//! Named phase timing for the Fig-6 execution-time breakdowns.

use std::time::{Duration, Instant};

/// Accumulates wall-clock time into named phases.
///
/// Phases are identified by `&'static str` names and accumulate across
/// repeated runs (re-entering a phase adds to its total). The report
/// preserves first-seen order, matching the paper's stacked-bar breakdown
/// (pre-scan, 100% rules, <100% rules, bitmap phase).
///
/// # Examples
///
/// ```
/// use dmc_metrics::PhaseTimer;
///
/// let mut timer = PhaseTimer::new();
/// {
///     let _guard = timer.enter("pre-scan");
///     // ... work ...
/// }
/// let report = timer.report();
/// assert_eq!(report.phases().len(), 1);
/// assert_eq!(report.phases()[0].0, "pre-scan");
/// ```
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseTimer {
    /// An empty timer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `phase`; the elapsed time is recorded when the guard
    /// drops.
    pub fn enter(&mut self, phase: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            timer: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Adds a pre-measured duration to `phase` (for callers that measure
    /// themselves).
    pub fn record(&mut self, phase: &'static str, elapsed: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| *name == phase) {
            entry.1 += elapsed;
        } else {
            self.phases.push((phase, elapsed));
        }
    }

    /// Total time of `phase` so far (zero if never entered).
    #[must_use]
    pub fn total(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(name, _)| *name == phase)
            .map_or(Duration::ZERO, |(_, d)| *d)
    }

    /// Snapshot of all phases in first-seen order.
    #[must_use]
    pub fn report(&self) -> PhaseReport {
        PhaseReport {
            phases: self.phases.clone(),
        }
    }
}

/// RAII guard recording a phase's elapsed time on drop.
pub struct PhaseGuard<'a> {
    timer: &'a mut PhaseTimer,
    phase: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.timer.record(self.phase, elapsed);
    }
}

/// Immutable snapshot of a [`PhaseTimer`].
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseReport {
    /// Phases in first-seen order.
    #[must_use]
    pub fn phases(&self) -> &[(&'static str, Duration)] {
        &self.phases
    }

    /// Total across all phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of one phase (zero if absent).
    #[must_use]
    pub fn phase(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(Duration::ZERO, |(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_phase() {
        let mut t = PhaseTimer::new();
        t.record("scan", Duration::from_millis(5));
        t.record("scan", Duration::from_millis(7));
        t.record("emit", Duration::from_millis(1));
        assert_eq!(t.total("scan"), Duration::from_millis(12));
        assert_eq!(t.total("emit"), Duration::from_millis(1));
        assert_eq!(t.total("absent"), Duration::ZERO);
    }

    #[test]
    fn report_preserves_first_seen_order() {
        let mut t = PhaseTimer::new();
        t.record("b", Duration::from_millis(1));
        t.record("a", Duration::from_millis(2));
        t.record("b", Duration::from_millis(3));
        let names: Vec<&str> = t.report().phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(t.report().total(), Duration::from_millis(6));
    }

    #[test]
    fn guard_records_on_drop() {
        let mut t = PhaseTimer::new();
        {
            let _g = t.enter("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(t.total("work") >= Duration::from_millis(1));
    }

    #[test]
    fn report_phase_lookup() {
        let mut t = PhaseTimer::new();
        t.record("x", Duration::from_secs(1));
        let r = t.report();
        assert_eq!(r.phase("x"), Duration::from_secs(1));
        assert_eq!(r.phase("y"), Duration::ZERO);
    }

    #[test]
    fn zero_duration_phases_are_recorded_not_dropped() {
        let mut t = PhaseTimer::new();
        t.record("instant", Duration::ZERO);
        t.record("work", Duration::from_millis(3));
        t.record("instant", Duration::ZERO);
        let r = t.report();
        let names: Vec<&str> = r.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["instant", "work"],
            "a zero-duration phase still claims its report slot"
        );
        assert_eq!(r.phase("instant"), Duration::ZERO);
        assert_eq!(r.total(), Duration::from_millis(3));
    }

    #[test]
    fn empty_timer_report_is_empty() {
        let r = PhaseTimer::new().report();
        assert!(r.phases().is_empty());
        assert_eq!(r.total(), Duration::ZERO);
        assert_eq!(r.phase("anything"), Duration::ZERO);
    }

    #[test]
    fn finish_falls_back_to_phase_sum_only_when_wall_unset() {
        use crate::memory::CounterMemory;
        use crate::report::ReportBuilder;

        let mut t = PhaseTimer::new();
        t.record("scan", Duration::from_millis(4));
        t.record("emit", Duration::from_millis(6));
        let builder = ReportBuilder::new("implication", "in-memory", 0, 0.9);
        let report = builder.finish(0, &t.report(), &CounterMemory::new(), None);
        assert!(
            (report.wall_seconds - 0.010).abs() < 1e-9,
            "unset wall clock falls back to the phase sum"
        );

        // All-zero phases leave the fallback at zero rather than inventing
        // a wall clock.
        let mut t = PhaseTimer::new();
        t.record("scan", Duration::ZERO);
        let builder = ReportBuilder::new("implication", "in-memory", 0, 0.9);
        let report = builder.finish(0, &t.report(), &CounterMemory::new(), None);
        assert_eq!(report.wall_seconds, 0.0);

        let mut t = PhaseTimer::new();
        t.record("scan", Duration::from_millis(4));
        let mut builder = ReportBuilder::new("implication", "in-memory", 0, 0.9);
        builder.wall(Duration::from_millis(25));
        let report = builder.finish(0, &t.report(), &CounterMemory::new(), None);
        assert!(
            (report.wall_seconds - 0.025).abs() < 1e-9,
            "an explicit wall clock wins over the phase sum"
        );
    }
}
