//! Minimal JSON support shared by the workspace's machine-readable
//! artifacts.
//!
//! The workspace vendors its dependencies and `serde` is only available as
//! a placeholder, so structured output is rendered and parsed with a small
//! hand-rolled implementation: a [`JsonWriter`] that produces
//! deterministic, pretty-printed output (fixed key order, two-space
//! indent), and a [`JsonValue`] recursive-descent parser used by the test
//! suite, the bench harness and CI to validate what the writer produced.
//!
//! This is the *single* writer/parser pair of the workspace: the run
//! reports here in `dmc-metrics` (`dmc.run_report.*`) and the benchmark
//! suite records in `dmc-bench` (`dmc.bench.*`) both serialize through it
//! rather than keeping per-crate copies.
//!
//! The writer only emits the subset of JSON those schemas need: objects,
//! arrays (of objects or scalars), strings, booleans, `null`, and finite
//! numbers.

use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string literal (with quotes).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds pretty-printed JSON with deterministic key order.
///
/// Keys are emitted in the order the caller writes them; nesting is tracked
/// so commas and indentation come out right without the caller bookkeeping
/// either.
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has at least one item.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// A writer positioned before the root value.
    #[must_use]
    pub fn new() -> Self {
        Self {
            out: String::new(),
            stack: Vec::new(),
        }
    }

    /// Finishes and returns the rendered document.
    #[must_use]
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Starts the next element: comma for siblings, newline + indent inside
    /// a container.
    fn begin_item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.out.push('\n');
            self.indent();
        }
    }

    /// Opens the root object or an array-element object.
    pub fn object(&mut self) {
        self.begin_item();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Opens an object under `key`.
    pub fn object_key(&mut self, key: &str) {
        self.begin_item();
        escape_into(&mut self.out, key);
        self.out.push_str(": {");
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let had_items = self.stack.pop().expect("end_object without object");
        if had_items {
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
    }

    /// Opens an array under `key`.
    pub fn array_key(&mut self, key: &str) {
        self.begin_item();
        escape_into(&mut self.out, key);
        self.out.push_str(": [");
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let had_items = self.stack.pop().expect("end_array without array");
        if had_items {
            self.out.push('\n');
            self.indent();
        }
        self.out.push(']');
    }

    /// Writes `key: "value"`.
    pub fn string(&mut self, key: &str, value: &str) {
        self.begin_item();
        escape_into(&mut self.out, key);
        self.out.push_str(": ");
        escape_into(&mut self.out, value);
    }

    /// Writes `key: value` for an unsigned integer.
    pub fn uint(&mut self, key: &str, value: u64) {
        self.begin_item();
        escape_into(&mut self.out, key);
        let _ = write!(self.out, ": {value}");
    }

    /// Writes `key: value` for a finite float (falls back to `null`).
    pub fn float(&mut self, key: &str, value: f64) {
        self.begin_item();
        escape_into(&mut self.out, key);
        if value.is_finite() {
            let _ = write!(self.out, ": {value}");
        } else {
            self.out.push_str(": null");
        }
    }

    /// Writes `key: value` or `key: null`.
    pub fn opt_uint(&mut self, key: &str, value: Option<u64>) {
        match value {
            Some(v) => self.uint(key, v),
            None => self.null(key),
        }
    }

    /// Writes `key: true` or `key: false`.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.begin_item();
        escape_into(&mut self.out, key);
        let _ = write!(self.out, ": {value}");
    }

    /// Writes a bare string as the next array element.
    pub fn item_string(&mut self, value: &str) {
        self.begin_item();
        escape_into(&mut self.out, value);
    }

    /// Writes a bare unsigned integer as the next array element.
    pub fn item_uint(&mut self, value: u64) {
        self.begin_item();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a bare finite float as the next array element (falls back
    /// to `null`).
    pub fn item_float(&mut self, value: f64) {
        self.begin_item();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes `key: null`.
    pub fn null(&mut self, key: &str) {
        self.begin_item();
        escape_into(&mut self.out, key);
        self.out.push_str(": null");
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in document order; empty for other variants.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Obj(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true", "expected 'true'")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected 'false'")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null", "expected 'null'")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our reports.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            s.push(ch);
                            self.pos += 3; // the final +1 below covers the 4th digit
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_nested_document() {
        let mut w = JsonWriter::new();
        w.object();
        w.string("name", "dmc");
        w.uint("rows", 42);
        w.float("seconds", 0.5);
        w.opt_uint("switch_at", None);
        w.array_key("phases");
        w.object();
        w.string("phase", "pre-scan");
        w.end_object();
        w.end_array();
        w.object_key("inner");
        w.uint("x", 1);
        w.end_object();
        w.end_object();
        let text = w.finish();
        let v = JsonValue::parse(&text).expect("round trip");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("dmc"));
        assert_eq!(v.get("rows").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("seconds").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(v.get("switch_at"), Some(&JsonValue::Null));
        let phases = v.get("phases").and_then(JsonValue::as_array).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("phase").and_then(JsonValue::as_str),
            Some("pre-scan")
        );
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("x"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn scalar_array_items_and_bools_round_trip() {
        let mut w = JsonWriter::new();
        w.object();
        w.bool("gate", true);
        w.bool("quick", false);
        w.array_key("threads");
        for t in [1u64, 2, 4, 8] {
            w.item_uint(t);
        }
        w.end_array();
        w.array_key("scales");
        w.item_string("small");
        w.item_string("medium");
        w.end_array();
        w.end_object();
        let v = JsonValue::parse(&w.finish()).expect("round trip");
        assert_eq!(v.get("gate").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("quick").and_then(JsonValue::as_bool), Some(false));
        let threads: Vec<u64> = v
            .get("threads")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|t| t.as_u64().unwrap())
            .collect();
        assert_eq!(threads, vec![1, 2, 4, 8]);
        let scales: Vec<&str> = v
            .get("scales")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|s| s.as_str().unwrap())
            .collect();
        assert_eq!(scales, vec!["small", "medium"]);
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let mut w = JsonWriter::new();
        w.object();
        w.string("k", "a\"b\\c\nd\te\u{1}");
        w.end_object();
        let text = w.finish();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(
            v.get("k").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{,}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn parses_numbers_and_literals() {
        let v = JsonValue::parse("[-1.5e2, 0, 7, true, false, null]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(-150.0));
        assert_eq!(items[1].as_u64(), Some(0));
        assert_eq!(items[2].as_u64(), Some(7));
        assert_eq!(items[3], JsonValue::Bool(true));
        assert_eq!(items[4], JsonValue::Bool(false));
        assert_eq!(items[5], JsonValue::Null);
    }
}
