//! Typed event counters for one DMC counting scan.
//!
//! Every scan (the general miss-counting scan, the similarity scan and the
//! 100%-rule scan) tallies the same five events so the run report can
//! reconcile them against the rendered rule set:
//!
//! * a **row** was scanned,
//! * a candidate was **admitted** (entered a candidate list, or entered the
//!   bitmap tail's hit table for a tail-only partner),
//! * a candidate was **deleted** (left without becoming a rule: miss budget
//!   exceeded, §5.2 maximum-hits pruning, a tail miss, or a failed
//!   qualification in the bitmap phase),
//! * a **miss** counter was incremented (counting scans only; the bitmap
//!   tail counts misses by popcount, not by increment),
//! * a rule was **emitted** by the scan (before any driver-level
//!   deduplication against the 100%-rule stage).
//!
//! The invariant the recorder maintains — and the test suite checks on
//! random matrices — is **admitted = deleted + emitted** once a scan has
//! finished: every candidate that ever entered the counter array either
//! died or became a rule.
//!
//! Recording is a handful of inlined integer adds per event, cheap enough
//! to stay on in the hot counting loop; the heavyweight recording (the
//! Fig-3 memory history, report assembly and JSON rendering) only happens
//! when a caller asks for it.

/// Cumulative event counts of one scan (or a merge of several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanTally {
    /// Rows fed through the scan.
    pub rows_scanned: u64,
    /// Candidates that entered the counter array (or the tail hit table).
    pub candidates_admitted: u64,
    /// Candidates removed without being emitted as rules.
    pub candidates_deleted: u64,
    /// Miss-counter increments performed by the counting scan.
    pub misses_counted: u64,
    /// Rules emitted by the scan itself (pre driver-level filtering).
    pub rules_emitted: u64,
}

impl ScanTally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one scanned row.
    #[inline]
    pub fn row(&mut self) {
        self.rows_scanned += 1;
    }

    /// Records `n` scanned rows (block-granular scans).
    #[inline]
    pub fn rows(&mut self, n: usize) {
        self.rows_scanned += n as u64;
    }

    /// Records `n` admitted candidates.
    #[inline]
    pub fn admit(&mut self, n: usize) {
        self.candidates_admitted += n as u64;
    }

    /// Records `n` deleted candidates.
    #[inline]
    pub fn delete(&mut self, n: usize) {
        self.candidates_deleted += n as u64;
    }

    /// Records `n` miss-counter increments.
    #[inline]
    pub fn miss(&mut self, n: usize) {
        self.misses_counted += n as u64;
    }

    /// Records `n` emitted rules.
    #[inline]
    pub fn emit(&mut self, n: usize) {
        self.rules_emitted += n as u64;
    }

    /// Adds another tally into this one (stage or worker aggregation).
    pub fn merge(&mut self, other: &ScanTally) {
        self.rows_scanned += other.rows_scanned;
        self.candidates_admitted += other.candidates_admitted;
        self.candidates_deleted += other.candidates_deleted;
        self.misses_counted += other.misses_counted;
        self.rules_emitted += other.rules_emitted;
    }

    /// `true` when every admitted candidate is accounted for:
    /// `admitted == deleted + emitted`. Holds once a scan has finished.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.candidates_admitted == self.candidates_deleted + self.rules_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate() {
        let mut t = ScanTally::new();
        t.row();
        t.row();
        t.admit(5);
        t.miss(3);
        t.delete(2);
        t.emit(3);
        assert_eq!(t.rows_scanned, 2);
        assert_eq!(t.candidates_admitted, 5);
        assert_eq!(t.candidates_deleted, 2);
        assert_eq!(t.misses_counted, 3);
        assert_eq!(t.rules_emitted, 3);
        assert!(t.reconciles());
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ScanTally::new();
        a.admit(4);
        a.emit(4);
        let mut b = ScanTally::new();
        b.row();
        b.admit(2);
        b.delete(2);
        a.merge(&b);
        assert_eq!(a.rows_scanned, 1);
        assert_eq!(a.candidates_admitted, 6);
        assert!(a.reconciles());
    }

    #[test]
    fn unbalanced_tally_does_not_reconcile() {
        let mut t = ScanTally::new();
        t.admit(3);
        t.delete(1);
        assert!(!t.reconciles());
    }
}
