//! Instrumentation substrate for the DMC rule-mining workspace.
//!
//! The paper's evaluation (§6.2) reports two quantities per run:
//!
//! * **execution time**, broken down into pre-scan, 100%-rule extraction and
//!   sub-100%-rule extraction (Fig 6(c)–(f)), and
//! * **the maximum memory size of the counter array** that holds candidate
//!   ids and miss counters (Fig 3, Fig 6(g),(h)).
//!
//! [`PhaseTimer`] provides the first, [`CounterMemory`] the second. Both are
//! plain single-threaded accumulators the algorithms update inline; the
//! experiments harness then renders them into the paper's tables. Parallel
//! drivers keep one of each per worker and surface them via
//! [`WorkerReport`].
//!
//! On top of those accumulators sits the structured observability layer:
//! [`ScanTally`] counts scan events (rows, candidate admissions/deletions,
//! misses, emitted rules), and [`RunReport`] rolls phase times, tallies,
//! stage outcomes, worker aggregates, the bitmap-switch position and spill
//! volume into one machine-readable value ([`RunReport::to_json`]) that
//! every driver attaches to its output. The [`json`] module provides the
//! dependency-free writer/parser pair behind it.
//!
//! The [`telemetry`] module is the *live* counterpart: lock-free latency
//! [`Histogram`]s, [`Counter`]s and [`Gauge`]s in a named [`Registry`],
//! and near-zero-cost hierarchical spans ([`span!`]) — what the serve
//! daemon and the shard coordinator expose while they run, and what the
//! run report's final `telemetry` section summarizes.

pub mod json;
mod memory;
mod report;
mod tally;
pub mod telemetry;
mod timer;
mod worker;

pub use memory::{CounterMemory, MemorySample, COL_OVERHEAD_BYTES, ENTRY_BYTES};
pub use report::{
    CompactionReport, IngestStats, IoReport, ReportBuilder, RunReport, ServeStats, ShardReport,
    ShardSummary, StageReport, TelemetryHistogram, TelemetryReport, WorkerSummary,
    BOOST_HIST_BUCKETS, RUN_REPORT_SCHEMA,
};
pub use tally::ScanTally;
pub use telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, SpanEvent,
};
pub use timer::{PhaseReport, PhaseTimer};
pub use worker::WorkerReport;
