//! Instrumentation substrate for the DMC rule-mining workspace.
//!
//! The paper's evaluation (§6.2) reports two quantities per run:
//!
//! * **execution time**, broken down into pre-scan, 100%-rule extraction and
//!   sub-100%-rule extraction (Fig 6(c)–(f)), and
//! * **the maximum memory size of the counter array** that holds candidate
//!   ids and miss counters (Fig 3, Fig 6(g),(h)).
//!
//! [`PhaseTimer`] provides the first, [`CounterMemory`] the second. Both are
//! plain single-threaded accumulators the algorithms update inline; the
//! experiments harness then renders them into the paper's tables. Parallel
//! drivers keep one of each per worker and surface them via
//! [`WorkerReport`].

mod memory;
mod timer;
mod worker;

pub use memory::{CounterMemory, MemorySample, COL_OVERHEAD_BYTES, ENTRY_BYTES};
pub use timer::{PhaseReport, PhaseTimer};
pub use worker::WorkerReport;
