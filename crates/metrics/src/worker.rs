//! Per-worker instrumentation for the parallel drivers.
//!
//! The parallel pipelines fan rows out to workers that each own an LHS
//! column partition. Aggregate numbers (one peak, one phase table) hide
//! load imbalance — a single dense partition can dominate wall-clock time
//! while the merged peak looks modest. [`WorkerReport`] keeps the per-worker
//! breakdown: its phase times, its counter-array peak, and where (if
//! anywhere) its scan switched to the bitmap tail. Drivers collect one per
//! worker into their output structs.

use crate::{CounterMemory, PhaseReport, ScanTally};

/// One worker's share of a parallel run.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index in `0..threads`; the worker owns LHS columns `c` with
    /// `c % threads == worker`.
    pub worker: usize,
    /// Time this worker spent per stage (counting stages plus its own
    /// `bitmap tail`).
    pub phases: PhaseReport,
    /// Counter-array accounting for this worker's partition (peak = max
    /// over the stages it ran).
    pub memory: CounterMemory,
    /// Event counters summed over the stages this worker ran.
    pub tally: ScanTally,
    /// Row position where this worker's sub-100% scan switched to the
    /// bitmap tail, if it did. Workers switch independently: each applies
    /// the policy to its own (smaller) counter array.
    pub switch_at: Option<usize>,
}

impl WorkerReport {
    /// An empty report for worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        Self {
            worker,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_report_is_empty() {
        let r = WorkerReport::new(3);
        assert_eq!(r.worker, 3);
        assert!(r.phases.phases().is_empty());
        assert_eq!(r.memory.peak_candidates(), 0);
        assert_eq!(r.tally, ScanTally::default());
        assert_eq!(r.switch_at, None);
    }
}
