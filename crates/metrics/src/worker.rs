//! Per-worker instrumentation for the parallel drivers.
//!
//! The parallel pipelines run one shared scan fed by a work-assisting
//! block scheduler: workers claim row blocks from a shared cursor,
//! aggregate them into per-block bitmaps, and take turns folding the
//! aggregates into the scan in global block order. Aggregate numbers (one
//! phase table, one tally) hide scheduling imbalance — one worker can end
//! up folding most blocks while the others only aggregate.
//! [`WorkerReport`] keeps the per-worker breakdown: its phase times, the
//! share of the stage tallies credited to it, and how many blocks it
//! claimed (and how many of those were steals from another worker's
//! preferred stripe). Drivers collect one per worker into their output
//! structs.

use crate::{CounterMemory, PhaseReport, ScanTally};

/// One worker's share of a parallel run.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index in `0..threads`.
    pub worker: usize,
    /// Time this worker spent per stage (counting stages plus the
    /// `bitmap tail`, when this worker ran the final fold).
    pub phases: PhaseReport,
    /// Counter-array accounting. The block scheduler shares one counter
    /// array across workers, so this stays empty for its workers; the
    /// run-level memory carries the peak.
    pub memory: CounterMemory,
    /// The share of the stage tallies credited to this worker: the tally
    /// delta of every block it claimed, plus the tail/finish delta when it
    /// ran the final fold.
    pub tally: ScanTally,
    /// Row position where the scan switched to the bitmap tail, if this
    /// worker observed the switch while folding. The run-level
    /// `bitmap_switch_at` carries the (single, global) switch position.
    pub switch_at: Option<usize>,
    /// Row blocks this worker claimed and aggregated.
    pub blocks_processed: u64,
    /// Claimed blocks whose preferred owner (`block % threads`) was
    /// another worker — i.e. work assisting in action.
    pub blocks_stolen: u64,
}

impl WorkerReport {
    /// An empty report for worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        Self {
            worker,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_report_is_empty() {
        let r = WorkerReport::new(3);
        assert_eq!(r.worker, 3);
        assert!(r.phases.phases().is_empty());
        assert_eq!(r.memory.peak_candidates(), 0);
        assert_eq!(r.tally, ScanTally::default());
        assert_eq!(r.switch_at, None);
        assert_eq!(r.blocks_processed, 0);
        assert_eq!(r.blocks_stolen, 0);
    }
}
