//! Live telemetry: latency histograms, counters/gauges, a named
//! [`Registry`], and lightweight hierarchical spans.
//!
//! The [`RunReport`](crate::RunReport) only exists *after* a run finishes;
//! the long-lived surfaces that grew around the miner — the `dmc-serve`
//! daemon and the multi-process shard coordinator — need visibility *while*
//! they run. This module is the substrate: everything here is dependency
//! free, lock free on the hot paths, and cheap enough to leave compiled in.
//!
//! # Histograms
//!
//! [`Histogram`] buckets observations (durations, in microseconds) into 32
//! fixed power-of-two buckets: bucket `i` holds values whose
//! `floor(log2(max(v, 1)))` is `i` (clamped to 31), i.e. bucket 0 covers
//! `[0, 2)` µs, bucket 1 `[2, 4)` µs, … bucket 31 everything from ~36
//! minutes up. Each bucket is an `AtomicU64`, so recording is a single
//! relaxed `fetch_add` plus a `fetch_max` for the running maximum — no
//! locks, mergeable across threads and processes by bucket-wise addition.
//! Quantiles come from a [`HistogramSnapshot`]: the reported `p(q)` is the
//! upper bound of the first bucket whose cumulative count reaches
//! `q * count`, clamped to the recorded maximum — so
//! `p50 <= p90 <= p99 <= max` holds *exactly*, not just approximately
//! (property-tested below).
//!
//! # Registry
//!
//! A [`Registry`] maps stable dotted names (`"serve.request.rule"`) to
//! shared instruments. Registration is idempotent: asking twice for the
//! same name returns the same `Arc`, so call sites don't coordinate.
//! [`global()`] is the process-wide registry the miner, engine and shard
//! coordinator instrument; the serve daemon keeps a per-server registry as
//! well (multiple servers run in one test process) and merges both into
//! one [`RegistrySnapshot`] for the `metrics` request and the Prometheus
//! exposition — the same snapshot serves both.
//!
//! # Spans
//!
//! [`span()`] (or the [`span!`](crate::span) macro) returns an RAII guard
//! that, on drop, appends a `(name, depth, micros)` event to a bounded
//! ring buffer. Spans are globally disabled by default: the disabled path
//! is one relaxed atomic load — no `Instant::now()`, no allocation, no
//! lock — so instrumented hot loops cost nothing in production. Enable
//! with [`set_spans_enabled`] or `DMC_TELEMETRY_SPANS=1`. The ring holds
//! the most recent [`EVENT_LOG_CAPACITY`] events; overflow drops the
//! oldest and counts what was lost ([`events_dropped`]) rather than
//! blocking or growing.

use crate::json::JsonWriter;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets; bucket 31 is the overflow.
pub const HIST_BUCKETS: usize = 32;

/// Ring-buffer capacity of the span event log.
pub const EVENT_LOG_CAPACITY: usize = 4096;

/// The bucket index for a microsecond value: `floor(log2(max(v, 1)))`,
/// clamped to the last bucket.
#[must_use]
pub fn bucket_index(micros: u64) -> usize {
    let v = micros.max(1);
    ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Exclusive upper bound of bucket `i` in microseconds (`2^(i+1)`);
/// `u64::MAX` for the overflow bucket.
#[must_use]
pub fn bucket_upper_bound_us(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A lock-free log-bucketed latency histogram.
///
/// All updates are relaxed atomics; readers take a [`snapshot`] and work
/// with that. Bucket counts, total count, sum and max are not read
/// atomically *together*, so a snapshot taken mid-update can be off by the
/// in-flight observation — fine for monitoring, and the final snapshot of
/// a quiesced histogram is exact.
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation of `micros` microseconds.
    pub fn record_us(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
        self.max_us.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for quantiles and merging.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values in microseconds.
    pub sum_us: u64,
    /// Largest observed value in microseconds.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Folds `other` into `self`: bucket-wise addition, summed counts,
    /// max of maxes. Merging is associative and commutative
    /// (property-tested), so shard snapshots can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The `q`-quantile in microseconds (`q` in `[0, 1]`): the upper bound
    /// of the first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the recorded max. Zero when empty. Monotone in `q` and
    /// never above [`max_us`](Self::max_us) by construction.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean observation in microseconds (zero when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (in-flight requests, workers running).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The instrument kinds a [`Registry`] holds.
#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of shared instruments.
///
/// Registration is idempotent — the first caller creates, later callers
/// get the same `Arc` — so instrumented code just asks for what it needs.
/// Asking for an existing name with a *different* kind returns a fresh
/// detached instrument (recorded values go nowhere); names are expected
/// to be stable per kind.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        let mut instruments = self.instruments.lock().expect("registry lock poisoned");
        if let Some((_, existing)) = instruments.iter().find(|(n, _)| n == name) {
            return existing.clone();
        }
        let made = make();
        instruments.push((name.to_string(), made.clone()));
        made
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Instrument::Histogram(Arc::new(Histogram::new()))) {
            Instrument::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name within each kind.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let instruments = self.instruments.lock().expect("registry lock poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, instrument) in instruments.iter() {
            match instrument {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap.sort();
        snap
    }
}

/// A point-in-time copy of a [`Registry`] (or a merge of several).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Folds `other` into `self`: same-named counters and gauges add,
    /// same-named histograms merge, new names append.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.sort();
    }

    /// The snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.object();
        w.object_key("counters");
        for (name, v) in &self.counters {
            w.uint(name, *v);
        }
        w.end_object();
        w.object_key("gauges");
        for (name, v) in &self.gauges {
            // Gauges can go negative; the writer has no int64, so render
            // through the (exact for |v| < 2^53) float path.
            w.float(name, *v as f64);
        }
        w.end_object();
        w.object_key("histograms");
        for (name, h) in &self.histograms {
            w.object_key(name);
            w.uint("count", h.count);
            w.uint("sum_us", h.sum_us);
            w.uint("max_us", h.max_us);
            w.uint("p50_us", h.quantile_us(0.50));
            w.uint("p90_us", h.quantile_us(0.90));
            w.uint("p99_us", h.quantile_us(0.99));
            w.array_key("buckets");
            for &b in &h.buckets {
                w.item_uint(b);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): dots in names become underscores, counters and gauges are
    /// single samples, histograms use the cumulative
    /// `_bucket{le="..."}`/`_sum`/`_count` convention (bucket bounds are
    /// the scheme's power-of-two upper bounds, in microseconds).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cum += b;
                if i == HIST_BUCKETS - 1 {
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
                } else {
                    let bound = bucket_upper_bound_us(i);
                    let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{n}_sum {}", h.sum_us);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

/// Maps a dotted instrument name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`, non-digit first).
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// The process-wide registry. The mining pipeline, engine and shard
/// coordinator register here; per-daemon instruments live in the server's
/// own registry and are merged at snapshot time.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span: what ran, how deep, and for how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's dotted name (`"mine.pass2.block"`).
    pub name: &'static str,
    /// Nesting depth at entry (0 = top-level) on the recording thread.
    pub depth: u16,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

struct EventLog {
    ring: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
}

fn event_log() -> &'static EventLog {
    static LOG: OnceLock<EventLog> = OnceLock::new();
    LOG.get_or_init(|| EventLog {
        ring: Mutex::new(VecDeque::with_capacity(EVENT_LOG_CAPACITY)),
        dropped: AtomicU64::new(0),
    })
}

fn spans_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = std::env::var("DMC_TELEMETRY_SPANS").is_ok_and(|v| !v.is_empty() && v != "0");
        AtomicBool::new(on)
    })
}

/// Whether spans record (default: the `DMC_TELEMETRY_SPANS` environment
/// variable at first use — any non-empty value other than `"0"` enables).
#[must_use]
pub fn spans_enabled() -> bool {
    spans_flag().load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide.
pub fn set_spans_enabled(on: bool) {
    spans_flag().store(on, Ordering::Relaxed);
}

thread_local! {
    static SPAN_DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Starts a span; the event is recorded when the guard drops. When spans
/// are disabled this is one relaxed atomic load and returns an inert
/// guard — no clock read, no allocation.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { active: None };
    }
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth.saturating_add(1));
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            depth,
            start: Instant::now(),
        }),
    }
}

struct ActiveSpan {
    name: &'static str,
    depth: u16,
    start: Instant,
}

/// RAII guard returned by [`span()`]; records the event on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let micros = u64::try_from(active.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let log = event_log();
        let mut ring = log.ring.lock().expect("event log poisoned");
        if ring.len() == EVENT_LOG_CAPACITY {
            ring.pop_front();
            log.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(SpanEvent {
            name: active.name,
            depth: active.depth,
            micros,
        });
    }
}

/// Starts a telemetry span. Shorthand for
/// [`telemetry::span(...)`](span()); bind the guard
/// (`let _span = span!("mine.pass2");`) so it lives to the end of scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::span($name)
    };
}

/// The most recent span events, oldest first (up to `limit`).
#[must_use]
pub fn recent_events(limit: usize) -> Vec<SpanEvent> {
    let ring = event_log().ring.lock().expect("event log poisoned");
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).copied().collect()
}

/// How many span events the bounded ring has evicted so far.
#[must_use]
pub fn events_dropped() -> u64 {
    event_log().dropped.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0, "0 clamps into bucket 0");
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1, "overflow clamps");
    }

    #[test]
    fn bucket_bounds_cover_their_indices() {
        for i in 0..HIST_BUCKETS - 1 {
            let bound = bucket_upper_bound_us(i);
            assert_eq!(bucket_index(bound - 1), i, "largest value of bucket {i}");
            assert_eq!(bucket_index(bound), i + 1, "bound starts the next bucket");
        }
        assert_eq!(bucket_upper_bound_us(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum_us, 1009);
        assert_eq!(s.max_us, 1000);
        // Nine of ten observations sit in bucket 0 (bound 2µs): p50/p90
        // resolve there, p99 needs the tenth observation's bucket, whose
        // bound (1024) clamps to the recorded max.
        assert_eq!(s.quantile_us(0.50), 2);
        assert_eq!(s.quantile_us(0.90), 2);
        assert_eq!(s.quantile_us(0.99), 1000);
        assert!(s.quantile_us(0.50) <= s.quantile_us(0.99));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_us(0.5), 0);
        assert_eq!(s.quantile_us(0.99), 0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn single_observation_pins_every_quantile_to_max() {
        let h = Histogram::new();
        h.record_us(777);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile_us(q), 777, "q={q}");
        }
    }

    #[test]
    fn merge_adds_counts_and_takes_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_us(5);
        a.record_us(100);
        b.record_us(7);
        b.record_us(100_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum_us, 100_112);
        assert_eq!(m.max_us, 100_000);
        let total: u64 = m.buckets.iter().sum();
        assert_eq!(total, m.count, "bucket counts partition the total");
    }

    #[test]
    fn registry_is_idempotent_and_shared() {
        let r = Registry::new();
        let c1 = r.counter("reqs");
        let c2 = r.counter("reqs");
        c1.add(3);
        c2.add(4);
        assert_eq!(c1.get(), 7, "same name returns the same counter");
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record_us(10);
        h2.record_us(20);
        assert_eq!(h1.count(), 2);
        let g = r.gauge("inflight");
        g.add(2);
        g.add(-1);
        assert_eq!(g.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("reqs".to_string(), 7)]);
        assert_eq!(snap.gauges, vec![("inflight".to_string(), 1)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
    }

    #[test]
    fn kind_mismatch_returns_detached_instrument() {
        let r = Registry::new();
        let _c = r.counter("x");
        let g = r.gauge("x");
        g.set(99);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("x".to_string(), 0)]);
        assert!(snap.gauges.is_empty(), "mismatched kind is not registered");
    }

    #[test]
    fn snapshot_merge_combines_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared").add(1);
        b.counter("shared").add(2);
        a.counter("only_a").add(5);
        b.gauge("g").set(-3);
        a.histogram("h").record_us(10);
        b.histogram("h").record_us(20);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(
            snap.counters,
            vec![("only_a".to_string(), 5), ("shared".to_string(), 3)]
        );
        assert_eq!(snap.gauges, vec![("g".to_string(), -3)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
    }

    #[test]
    fn json_snapshot_round_trips() {
        use crate::json::JsonValue;
        let r = Registry::new();
        r.counter("serve.requests").add(12);
        r.gauge("serve.in_flight").set(-2);
        let h = r.histogram("serve.request.rule");
        h.record_us(3);
        h.record_us(900);
        let v = JsonValue::parse(&r.snapshot().to_json()).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(JsonValue::as_u64),
            Some(12)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("serve.in_flight"))
                .and_then(JsonValue::as_f64),
            Some(-2.0)
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("serve.request.rule"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(hist.get("max_us").and_then(JsonValue::as_u64), Some(900));
        let buckets = hist.get("buckets").and_then(JsonValue::as_array).unwrap();
        assert_eq!(buckets.len(), HIST_BUCKETS);
        let total: u64 = buckets.iter().map(|b| b.as_u64().unwrap()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn prometheus_text_uses_cumulative_buckets() {
        let r = Registry::new();
        r.counter("serve.requests").add(5);
        r.gauge("serve.in_flight").set(2);
        let h = r.histogram("serve.request.rule");
        h.record_us(1); // bucket 0
        h.record_us(3); // bucket 1
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 5\n"));
        assert!(text.contains("# TYPE serve_in_flight gauge\nserve_in_flight 2\n"));
        assert!(text.contains("serve_request_rule_bucket{le=\"2\"} 1\n"));
        assert!(
            text.contains("serve_request_rule_bucket{le=\"4\"} 2\n"),
            "buckets are cumulative"
        );
        assert!(text.contains("serve_request_rule_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_request_rule_sum 4\n"));
        assert!(text.contains("serve_request_rule_count 2\n"));
        assert!(!text.contains('.'), "no dots survive sanitization");
    }

    #[test]
    fn sanitize_handles_odd_names() {
        assert_eq!(sanitize_metric_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn spans_record_when_enabled_and_not_otherwise() {
        // Serialize against other span tests via the flag itself: this
        // test owns the global flag while it runs.
        set_spans_enabled(false);
        let before = recent_events(usize::MAX).len();
        {
            let _g = span("test.disabled");
        }
        assert_eq!(
            recent_events(usize::MAX).len(),
            before,
            "disabled spans record nothing"
        );
        set_spans_enabled(true);
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        set_spans_enabled(false);
        let events = recent_events(usize::MAX);
        let inner = events
            .iter()
            .rfind(|e| e.name == "test.inner")
            .expect("inner span recorded");
        let outer = events
            .iter()
            .rfind(|e| e.name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1, "nesting increments depth");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.global.counter");
        let before = c.get();
        global().counter("test.global.counter").inc();
        assert_eq!(c.get(), before + 1);
    }

    fn snapshot_from(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record_us(v);
        }
        h.snapshot()
    }

    fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
        let mut m = a.clone();
        m.merge(b);
        m
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(0u64..2_000_000, 0..40),
            b in proptest::collection::vec(0u64..2_000_000, 0..40),
            c in proptest::collection::vec(0u64..2_000_000, 0..40),
        ) {
            let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
            prop_assert_eq!(merged(&merged(&sa, &sb), &sc), merged(&sa, &merged(&sb, &sc)));
            prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
            // Merging is also equivalent to having recorded everything into
            // one histogram.
            let mut all = a.clone();
            all.extend(&b);
            all.extend(&c);
            prop_assert_eq!(merged(&merged(&sa, &sb), &sc), snapshot_from(&all));
        }

        #[test]
        fn quantiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..5_000_000, 1..80),
            qs in proptest::collection::vec(0.0f64..1.0, 2..6),
        ) {
            let s = snapshot_from(&values);
            let mut sorted = qs.clone();
            sorted.sort_by(f64::total_cmp);
            let ps: Vec<u64> = sorted.iter().map(|&q| s.quantile_us(q)).collect();
            for w in ps.windows(2) {
                prop_assert!(w[0] <= w[1], "quantiles must be monotone in q");
            }
            for &p in &ps {
                prop_assert!(p <= s.max_us, "no quantile exceeds the recorded max");
            }
            prop_assert_eq!(s.quantile_us(1.0), s.max_us);
            prop_assert_eq!(s.count, values.len() as u64);
            let in_buckets: u64 = s.buckets.iter().sum();
            prop_assert_eq!(in_buckets, s.count);
        }
    }
}
