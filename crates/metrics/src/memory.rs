//! The paper's counter-array memory model.
//!
//! §4 measures "the memory size for the counter array that keeps candidate
//! IDs and their miss-counters". We model it as:
//!
//! * [`ENTRY_BYTES`] per live candidate (candidate column id + miss
//!   counter, two `u32`s), plus
//! * [`COL_OVERHEAD_BYTES`] per column with a live candidate list (the
//!   per-column `cnt` counter and list header).
//!
//! Algorithms report candidate-count deltas as they add and delete
//! candidates; the tracker maintains the current and peak footprint and an
//! optional per-row history (the Fig-3 curve). History sampling is
//! decimated to a bounded number of points so instrumenting a 700k-row scan
//! stays cheap.

/// Bytes attributed to one live candidate entry (id + miss counter).
pub const ENTRY_BYTES: usize = 8;

/// Bytes attributed to each column that currently owns a candidate list.
pub const COL_OVERHEAD_BYTES: usize = 16;

/// One point of the Fig-3 memory curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemorySample {
    /// Rows scanned when the sample was taken.
    pub rows_scanned: usize,
    /// Live candidate entries at that point.
    pub candidates: usize,
    /// Modeled bytes at that point.
    pub bytes: usize,
}

/// Tracks the candidate-counter array footprint of a DMC run.
///
/// # Examples
///
/// ```
/// use dmc_metrics::{CounterMemory, ENTRY_BYTES, COL_OVERHEAD_BYTES};
///
/// let mut mem = CounterMemory::new();
/// mem.add_candidates(3);
/// mem.add_list();
/// assert_eq!(mem.current_bytes(), 3 * ENTRY_BYTES + COL_OVERHEAD_BYTES);
/// mem.remove_candidates(2);
/// assert_eq!(mem.peak_candidates(), 3);
/// assert_eq!(mem.current_candidates(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CounterMemory {
    candidates: usize,
    lists: usize,
    peak_candidates: usize,
    peak_bytes: usize,
    history: Vec<MemorySample>,
    history_cap: usize,
    /// Take a history sample every `stride` rows (doubles when full).
    stride: usize,
}

impl CounterMemory {
    /// A tracker with no history recording.
    #[must_use]
    pub fn new() -> Self {
        Self {
            history_cap: 0,
            stride: 1,
            ..Self::default()
        }
    }

    /// A tracker keeping a decimated history of at most `cap` samples
    /// (`cap >= 2`; the tracker doubles its sampling stride when full).
    #[must_use]
    pub fn with_history(cap: usize) -> Self {
        Self {
            history_cap: cap.max(2),
            stride: 1,
            ..Self::default()
        }
    }

    /// Records `n` new candidate entries.
    #[inline]
    pub fn add_candidates(&mut self, n: usize) {
        self.candidates += n;
        if self.candidates > self.peak_candidates {
            self.peak_candidates = self.candidates;
        }
        let bytes = self.current_bytes();
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Records deletion of `n` candidate entries.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more candidates are removed than exist.
    #[inline]
    pub fn remove_candidates(&mut self, n: usize) {
        debug_assert!(n <= self.candidates, "removing more candidates than live");
        self.candidates = self.candidates.saturating_sub(n);
    }

    /// Records creation of a per-column candidate list.
    #[inline]
    pub fn add_list(&mut self) {
        self.lists += 1;
        let bytes = self.current_bytes();
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Records release of a per-column candidate list.
    #[inline]
    pub fn remove_list(&mut self) {
        debug_assert!(self.lists > 0, "removing a list when none is live");
        self.lists = self.lists.saturating_sub(1);
    }

    /// Live candidate entries.
    #[inline]
    #[must_use]
    pub fn current_candidates(&self) -> usize {
        self.candidates
    }

    /// Peak live candidate entries seen so far.
    #[inline]
    #[must_use]
    pub fn peak_candidates(&self) -> usize {
        self.peak_candidates
    }

    /// Modeled current footprint in bytes.
    #[inline]
    #[must_use]
    pub fn current_bytes(&self) -> usize {
        self.candidates * ENTRY_BYTES + self.lists * COL_OVERHEAD_BYTES
    }

    /// Modeled peak footprint in bytes.
    #[inline]
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Takes a history sample after `rows_scanned` rows (no-op without
    /// history, or off-stride).
    pub fn sample(&mut self, rows_scanned: usize) {
        if self.history_cap == 0 || rows_scanned % self.stride != 0 {
            return;
        }
        if self.history.len() >= self.history_cap {
            // Decimate: keep every other sample and double the stride.
            let mut keep = 0;
            for i in (0..self.history.len()).step_by(2) {
                self.history[keep] = self.history[i];
                keep += 1;
            }
            self.history.truncate(keep);
            self.stride *= 2;
            if rows_scanned % self.stride != 0 {
                return;
            }
        }
        self.history.push(MemorySample {
            rows_scanned,
            candidates: self.candidates,
            bytes: self.current_bytes(),
        });
    }

    /// The recorded Fig-3 curve (empty unless built
    /// [`CounterMemory::with_history`]).
    #[must_use]
    pub fn history(&self) -> &[MemorySample] {
        &self.history
    }

    /// Merges another tracker's peak into this one (used when an algorithm
    /// runs in stages with separate trackers).
    pub fn absorb_peak(&mut self, other: &CounterMemory) {
        self.peak_candidates = self.peak_candidates.max(other.peak_candidates);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.history.extend_from_slice(&other.history);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut mem = CounterMemory::new();
        mem.add_candidates(5);
        mem.remove_candidates(4);
        mem.add_candidates(2);
        assert_eq!(mem.current_candidates(), 3);
        assert_eq!(mem.peak_candidates(), 5);
    }

    #[test]
    fn bytes_model_counts_lists_and_entries() {
        let mut mem = CounterMemory::new();
        mem.add_list();
        mem.add_list();
        mem.add_candidates(10);
        assert_eq!(
            mem.current_bytes(),
            10 * ENTRY_BYTES + 2 * COL_OVERHEAD_BYTES
        );
        mem.remove_list();
        assert_eq!(mem.current_bytes(), 10 * ENTRY_BYTES + COL_OVERHEAD_BYTES);
        assert_eq!(mem.peak_bytes(), 10 * ENTRY_BYTES + 2 * COL_OVERHEAD_BYTES);
    }

    #[test]
    fn history_records_samples() {
        let mut mem = CounterMemory::with_history(100);
        for row in 1..=5 {
            mem.add_candidates(row);
            mem.sample(row);
        }
        let hist = mem.history();
        assert_eq!(hist.len(), 5);
        assert_eq!(hist[0].rows_scanned, 1);
        assert_eq!(hist[4].candidates, 1 + 2 + 3 + 4 + 5);
        assert_eq!(hist[2].bytes, hist[2].candidates * ENTRY_BYTES);
    }

    #[test]
    fn history_decimates_when_full() {
        let mut mem = CounterMemory::with_history(4);
        for row in 1..=32 {
            mem.add_candidates(1);
            mem.sample(row);
        }
        let hist = mem.history();
        assert!(hist.len() <= 4 + 1, "bounded: got {}", hist.len());
        // Samples remain in increasing row order.
        assert!(hist
            .windows(2)
            .all(|w| w[0].rows_scanned < w[1].rows_scanned));
    }

    #[test]
    fn no_history_by_default() {
        let mut mem = CounterMemory::new();
        mem.add_candidates(1);
        mem.sample(1);
        assert!(mem.history().is_empty());
    }

    #[test]
    fn with_history_clamps_tiny_caps() {
        let mut mem = CounterMemory::with_history(0);
        for row in 1..=16 {
            mem.add_candidates(1);
            mem.sample(row);
        }
        assert!(!mem.history().is_empty(), "cap is clamped to at least 2");
        assert!(mem.history().len() <= 3);
    }

    #[test]
    fn absorb_merges_histories() {
        let mut a = CounterMemory::with_history(8);
        a.add_candidates(1);
        a.sample(1);
        let mut b = CounterMemory::with_history(8);
        b.add_candidates(2);
        b.sample(1);
        a.absorb_peak(&b);
        assert_eq!(a.history().len(), 2);
    }

    #[test]
    fn absorb_peak_takes_max() {
        let mut a = CounterMemory::new();
        a.add_candidates(3);
        let mut b = CounterMemory::new();
        b.add_candidates(10);
        b.remove_candidates(10);
        a.absorb_peak(&b);
        assert_eq!(a.peak_candidates(), 10);
        assert_eq!(a.current_candidates(), 3);
    }
}
