//! `dicD` analogue: a dictionary as a definition-word × head-word matrix.
//!
//! Columns are head words (words being defined), rows are definition words
//! (§6.1): entry `(r, c)` is 1 when head word `c`'s definition uses word
//! `r`. Similar columns are words with near-identical definitions — the
//! paper's example is *brother-in-law* ≃ *sister-in-law*.
//!
//! The generator draws each head word's definition as a bag of Zipfian
//! definition words, then plants synonym pairs whose definitions differ in
//! only a couple of words.

use crate::zipf::Zipf;
use dmc_matrix::transform::transpose;
use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`dictionary`].
#[derive(Clone, Debug)]
pub struct DictionaryConfig {
    /// Head words (columns).
    pub head_words: usize,
    /// Definition vocabulary (rows).
    pub def_words: usize,
    /// Mean definition length.
    pub mean_definition: f64,
    /// Zipf exponent of definition-word frequency.
    pub def_exponent: f64,
    /// Planted synonym pairs: head words `2i` and `2i+1` share definitions
    /// up to one word.
    pub synonym_pairs: usize,
    pub seed: u64,
}

impl DictionaryConfig {
    /// Defaults shaped like the Webster matrix at laptop scale.
    #[must_use]
    pub fn new(head_words: usize, def_words: usize, seed: u64) -> Self {
        Self {
            head_words,
            def_words,
            mean_definition: 12.0,
            def_exponent: 1.0,
            synonym_pairs: (head_words / 50).max(1),
            seed,
        }
    }
}

/// Generates the matrix (rows = definition words, columns = head words).
#[must_use]
pub fn dictionary(config: &DictionaryConfig) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vocab = Zipf::new(config.def_words, config.def_exponent);

    // Build per-head-word definitions (column-major), then transpose.
    let mut definitions: Vec<Vec<ColumnId>> = Vec::with_capacity(config.head_words);
    for _ in 0..config.head_words {
        let mut len = 2;
        while rng.gen::<f64>() < 1.0 - 1.0 / config.mean_definition {
            len += 1;
        }
        let mut def: Vec<ColumnId> = (0..len)
            .map(|_| vocab.sample(&mut rng) as ColumnId)
            .collect();
        def.sort_unstable();
        def.dedup();
        definitions.push(def);
    }
    for i in 0..config.synonym_pairs {
        let (a, b) = (2 * i, 2 * i + 1);
        if b >= config.head_words {
            break;
        }
        let mut copy = definitions[a].clone();
        // Swap one word (brother -> sister).
        if !copy.is_empty() {
            let idx = rng.gen_range(0..copy.len());
            copy.remove(idx);
            let replacement = vocab.sample(&mut rng) as ColumnId;
            if copy.binary_search(&replacement).is_err() {
                let pos = copy.partition_point(|&w| w < replacement);
                copy.insert(pos, replacement);
            }
        }
        definitions[b] = copy;
    }

    // definitions is head-word-major = the transposed matrix; transpose to
    // rows = definition words.
    let mut builder = MatrixBuilder::with_capacity(config.def_words, config.head_words, 0);
    for def in &definitions {
        builder.push_sorted_row(def);
    }
    transpose(&builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = DictionaryConfig::new(120, 80, 5);
        let a = dictionary(&cfg);
        assert_eq!(a, dictionary(&cfg));
        assert_eq!(a.n_rows(), 80, "rows are definition words");
        assert_eq!(a.n_cols(), 120, "columns are head words");
    }

    #[test]
    fn synonyms_have_high_jaccard() {
        let mut cfg = DictionaryConfig::new(200, 150, 9);
        cfg.synonym_pairs = 5;
        cfg.mean_definition = 15.0;
        let m = dictionary(&cfg);
        let cols = m.column_rows();
        let (a, b) = (&cols[0], &cols[1]);
        let inter = a.iter().filter(|r| b.binary_search(r).is_ok()).count();
        let union = a.len() + b.len() - inter;
        assert!(union > 0);
        let jaccard = inter as f64 / union as f64;
        assert!(jaccard > 0.6, "synonym pair jaccard = {jaccard}");
    }

    #[test]
    fn definition_words_are_heavy_tailed() {
        let cfg = DictionaryConfig::new(500, 300, 2);
        let m = dictionary(&cfg);
        // Row r's length = number of definitions using word r.
        let mut usage: Vec<usize> = (0..m.n_rows()).map(|r| m.row_len(r)).collect();
        usage.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            usage[0] > usage[150].max(1) * 3,
            "head={} mid={}",
            usage[0],
            usage[150]
        );
    }
}
