//! Planted-rule matrices with exact ground truth.
//!
//! For correctness experiments the harness needs matrices whose qualifying
//! rule set is known by construction. The generator plants implication
//! pairs `(lhs, rhs)` with a controlled miss rate on top of independent
//! background noise, and reports the planted pairs; tests assert the miner
//! finds every planted pair that truly qualifies (the generator re-checks
//! the realized confidences, so sampling noise cannot break assertions).

use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`planted_implications`].
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    pub rows: usize,
    pub cols: usize,
    /// Number of planted `(lhs, rhs)` pairs (uses columns `0..2*pairs`).
    pub pairs: usize,
    /// Probability a row activates a planted LHS.
    pub lhs_rate: f64,
    /// Probability the RHS co-fires when the LHS fires (≈ the planted
    /// confidence).
    pub co_rate: f64,
    /// Background density of the remaining columns.
    pub noise: f64,
    pub seed: u64,
}

impl PlantedConfig {
    /// A default with strongly planted pairs over light noise.
    #[must_use]
    pub fn new(rows: usize, cols: usize, pairs: usize, seed: u64) -> Self {
        assert!(2 * pairs <= cols, "need 2 columns per planted pair");
        Self {
            rows,
            cols,
            pairs,
            lhs_rate: 0.1,
            co_rate: 0.95,
            noise: 0.02,
            seed,
        }
    }
}

/// The generated matrix plus realized ground truth.
#[derive(Debug)]
pub struct PlantedData {
    pub matrix: SparseMatrix,
    /// The planted `(lhs, rhs)` pairs.
    pub planted: Vec<(ColumnId, ColumnId)>,
    /// Realized confidence of each planted pair (hits / lhs ones).
    pub realized_confidence: Vec<f64>,
}

/// Generates the matrix and reports realized confidences.
#[must_use]
pub fn planted_implications(config: &PlantedConfig) -> PlantedData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = MatrixBuilder::with_capacity(config.cols, config.rows, 0);
    let mut lhs_ones = vec![0u32; config.pairs];
    let mut hits = vec![0u32; config.pairs];

    for _ in 0..config.rows {
        let mut row: Vec<ColumnId> = Vec::new();
        for p in 0..config.pairs {
            let (lhs, rhs) = (2 * p as u32, 2 * p as u32 + 1);
            if rng.gen::<f64>() < config.lhs_rate {
                row.push(lhs);
                lhs_ones[p] += 1;
                if rng.gen::<f64>() < config.co_rate {
                    row.push(rhs);
                    hits[p] += 1;
                }
            } else if rng.gen::<f64>() < config.noise {
                // RHS also fires on its own, keeping |S_rhs| > |S_lhs|.
                row.push(rhs);
            }
        }
        for c in 2 * config.pairs..config.cols {
            if rng.gen::<f64>() < config.noise {
                row.push(c as ColumnId);
            }
        }
        builder.push_row(row);
    }
    let planted: Vec<(ColumnId, ColumnId)> = (0..config.pairs)
        .map(|p| (2 * p as u32, 2 * p as u32 + 1))
        .collect();
    let realized_confidence = (0..config.pairs)
        .map(|p| {
            if lhs_ones[p] == 0 {
                0.0
            } else {
                f64::from(hits[p]) / f64::from(lhs_ones[p])
            }
        })
        .collect();
    PlantedData {
        matrix: builder.finish(),
        planted,
        realized_confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_confidence_matches_matrix() {
        let data = planted_implications(&PlantedConfig::new(2000, 30, 5, 3));
        let ones = data.matrix.column_ones();
        for (i, &(lhs, rhs)) in data.planted.iter().enumerate() {
            let mut hits = 0u32;
            for row in data.matrix.rows() {
                if row.binary_search(&lhs).is_ok() && row.binary_search(&rhs).is_ok() {
                    hits += 1;
                }
            }
            let conf = f64::from(hits) / f64::from(ones[lhs as usize]);
            assert!(
                (conf - data.realized_confidence[i]).abs() < 1e-9,
                "pair {i}: {conf} vs {}",
                data.realized_confidence[i]
            );
        }
    }

    #[test]
    fn planted_pairs_are_high_confidence() {
        let data = planted_implications(&PlantedConfig::new(5000, 20, 3, 7));
        for &conf in &data.realized_confidence {
            assert!(conf > 0.85, "planted confidence {conf}");
        }
    }

    #[test]
    fn lhs_is_canonically_smaller() {
        let data = planted_implications(&PlantedConfig::new(3000, 12, 3, 11));
        let ones = data.matrix.column_ones();
        for &(lhs, rhs) in &data.planted {
            assert!(
                ones[lhs as usize] <= ones[rhs as usize],
                "planted direction matches the canonical order"
            );
        }
    }

    #[test]
    #[should_panic(expected = "2 columns per planted pair")]
    fn rejects_too_many_pairs() {
        let _ = PlantedConfig::new(10, 4, 3, 1);
    }
}
