//! `News` / `NewsP` analogue: news documents over a word vocabulary.
//!
//! Rows are documents, columns are (stemmed, stop-word-free) words. The
//! structure the paper's text-mining experiment (§6.3, Fig 7) relies on is
//! *topical co-occurrence*: a story about the chess prodigy Judit Polgar
//! mentions "polgar" rarely overall (low support) but almost always
//! together with "chess", "grandmaster", "kasparov" — exactly the
//! high-confidence low-support rules support pruning destroys.
//!
//! The generator plants a configurable number of topics. Each topic has a
//! rare *anchor* word (like "polgar") and a set of *theme* words; documents
//! of a topic contain the anchor with high probability and a random subset
//! of the theme, on top of Zipfian background vocabulary. Topic 0 is the
//! canonical "polgar" topic used by the Fig-7 experiment; the anchor and
//! theme ids are exposed so the harness can label them.

use crate::zipf::Zipf;
use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`news`].
#[derive(Clone, Debug)]
pub struct NewsConfig {
    /// Documents (rows).
    pub docs: usize,
    /// Vocabulary size (columns).
    pub vocab: usize,
    /// Number of planted topics.
    pub topics: usize,
    /// Theme words per topic.
    pub theme_words: usize,
    /// Fraction of documents that belong to some topic.
    pub topical_fraction: f64,
    /// Mean background words per document.
    pub mean_background: f64,
    /// Zipf exponent of the background vocabulary.
    pub background_exponent: f64,
    /// Probability that any document mentions a given theme word outside
    /// its topic (e.g. "chess" appearing in a non-Polgar story). This keeps
    /// theme supports above the anchor's, so `anchor ⇒ theme` is the
    /// canonical (small ⇒ large) rule direction, as in the paper's Fig 7.
    pub theme_background: f64,
    /// Planted near-synonym word pairs (spelling variants like
    /// "u.s."/"us"): both words of a pair appear in essentially the same
    /// documents, giving the corpus high-similarity column pairs.
    pub synonym_pairs: usize,
    pub seed: u64,
}

impl NewsConfig {
    /// Defaults shaped like the Reuters corpus at laptop scale.
    #[must_use]
    pub fn new(docs: usize, vocab: usize, seed: u64) -> Self {
        Self {
            docs,
            vocab,
            topics: (vocab / 400).max(2),
            theme_words: 12,
            topical_fraction: 0.35,
            mean_background: 25.0,
            background_exponent: 1.05,
            theme_background: 0.02,
            synonym_pairs: (vocab / 800).max(1),
            seed,
        }
    }
}

/// The generated corpus with its planted-topic ground truth.
#[derive(Debug)]
pub struct NewsData {
    pub matrix: SparseMatrix,
    /// Per topic: the anchor word id.
    pub anchors: Vec<ColumnId>,
    /// Per topic: the theme word ids.
    pub themes: Vec<Vec<ColumnId>>,
}

/// Generates the corpus.
///
/// Column-id layout: ids `0 .. topics*(1+theme_words)` are topic words
/// (anchor then theme per topic); the rest is background vocabulary.
#[must_use]
pub fn news(config: &NewsConfig) -> NewsData {
    let words_per_topic = 1 + config.theme_words;
    let reserved = config.topics * words_per_topic + 2 * config.synonym_pairs;
    assert!(
        reserved < config.vocab,
        "vocabulary too small for {} topics of {} words plus {} synonym pairs",
        config.topics,
        words_per_topic,
        config.synonym_pairs
    );
    let synonym_base = config.topics * words_per_topic;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let background = Zipf::new(config.vocab - reserved, config.background_exponent);

    let mut anchors = Vec::with_capacity(config.topics);
    let mut themes = Vec::with_capacity(config.topics);
    for t in 0..config.topics {
        let base = (t * words_per_topic) as ColumnId;
        anchors.push(base);
        themes.push((base + 1..=base + config.theme_words as ColumnId).collect());
    }

    let mut builder = MatrixBuilder::with_capacity(
        config.vocab,
        config.docs,
        (config.docs as f64 * (config.mean_background + 6.0)) as usize,
    );
    for _ in 0..config.docs {
        let mut row: Vec<ColumnId> = Vec::new();
        // Background text.
        let mut len = 1;
        while rng.gen::<f64>() < 1.0 - 1.0 / config.mean_background {
            len += 1;
        }
        for _ in 0..len {
            row.push((reserved + background.sample(&mut rng)) as ColumnId);
        }
        // Topic content.
        if rng.gen::<f64>() < config.topical_fraction {
            let t = rng.gen_range(0..config.topics);
            // The anchor appears in most topic documents…
            if rng.gen::<f64>() < 0.9 {
                row.push(anchors[t]);
            }
            // …and drags in most of the theme (this is what makes
            // anchor => theme-word rules high-confidence).
            for &w in &themes[t] {
                if rng.gen::<f64>() < 0.92 {
                    row.push(w);
                }
            }
        }
        // Theme words also occur in unrelated stories, so their support
        // exceeds their anchor's and anchor => theme is the canonical rule
        // direction.
        for theme in &themes {
            for &w in theme {
                if rng.gen::<f64>() < config.theme_background {
                    row.push(w);
                }
            }
        }
        // Synonym pairs: the variants co-occur almost always, with rare
        // one-sided uses keeping them near- rather than fully identical.
        for p in 0..config.synonym_pairs {
            let rate = 0.05 / (1.0 + p as f64);
            if rng.gen::<f64>() < rate {
                let (a, b) = (
                    (synonym_base + 2 * p) as ColumnId,
                    (synonym_base + 2 * p + 1) as ColumnId,
                );
                if rng.gen::<f64>() > 0.02 {
                    row.push(a);
                }
                if rng.gen::<f64>() > 0.02 {
                    row.push(b);
                }
            }
        }
        builder.push_row(row);
    }
    NewsData {
        matrix: builder.finish(),
        anchors,
        themes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = NewsConfig::new(500, 800, 17);
        let a = news(&cfg);
        let b = news(&cfg);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.matrix.n_rows(), 500);
        assert_eq!(a.matrix.n_cols(), 800);
        assert_eq!(a.anchors.len(), cfg.topics);
    }

    #[test]
    fn anchors_are_low_support() {
        let cfg = NewsConfig::new(2000, 1500, 23);
        let data = news(&cfg);
        let ones = data.matrix.column_ones();
        let anchor_support = ones[data.anchors[0] as usize];
        // An anchor appears in roughly topical_fraction/topics * 0.9 of
        // docs — rare relative to the head of the background vocabulary.
        let max_background = ones.iter().copied().max().unwrap();
        assert!(anchor_support > 0);
        assert!(
            anchor_support * 3 < max_background,
            "anchor {anchor_support} vs background head {max_background}"
        );
    }

    #[test]
    fn anchor_implies_theme_with_high_confidence() {
        let cfg = NewsConfig::new(4000, 1200, 31);
        let data = news(&cfg);
        let anchor = data.anchors[0];
        let theme_word = data.themes[0][0];
        let (mut anchor_rows, mut hits) = (0u32, 0u32);
        for row in data.matrix.rows() {
            if row.binary_search(&anchor).is_ok() {
                anchor_rows += 1;
                if row.binary_search(&theme_word).is_ok() {
                    hits += 1;
                }
            }
        }
        assert!(anchor_rows > 30, "anchor occurs: {anchor_rows}");
        let conf = f64::from(hits) / f64::from(anchor_rows);
        assert!(conf > 0.75, "conf(anchor => theme) = {conf}");
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn rejects_tiny_vocabulary() {
        let mut cfg = NewsConfig::new(10, 20, 1);
        cfg.topics = 5;
        cfg.theme_words = 10;
        let _ = news(&cfg);
    }
}
