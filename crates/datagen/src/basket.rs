//! Quest-style market-basket data (Agrawal & Srikant, VLDB '94).
//!
//! The classic synthetic workload of the association-mining literature
//! (the "T10.I4.D100K" family the a-priori paper \[2\] evaluates on), used
//! here to exercise the full a-priori itemset miner and DMC side by side
//! on basket-shaped data:
//!
//! * a pool of *patterns* (potentially-large itemsets) is drawn first,
//!   sizes geometric around `avg_pattern_size`, consecutive patterns
//!   sharing a prefix of items (cross-pattern correlation);
//! * each transaction draws its size geometrically around
//!   `avg_transaction_size` and is filled by sampling weighted patterns,
//!   keeping each pattern item with probability `1 − corruption`.

use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`basket`].
#[derive(Clone, Debug)]
pub struct BasketConfig {
    /// Transactions (rows).
    pub transactions: usize,
    /// Items (columns).
    pub items: usize,
    /// Mean transaction size (the `T` of T10.I4).
    pub avg_transaction_size: f64,
    /// Mean pattern size (the `I`).
    pub avg_pattern_size: f64,
    /// Number of patterns in the pool (the `L`).
    pub patterns: usize,
    /// Probability an item of a chosen pattern is dropped from the
    /// transaction.
    pub corruption: f64,
    pub seed: u64,
}

impl BasketConfig {
    /// A scaled-down T10.I4 analogue.
    #[must_use]
    pub fn new(transactions: usize, items: usize, seed: u64) -> Self {
        Self {
            transactions,
            items,
            avg_transaction_size: 10.0,
            avg_pattern_size: 4.0,
            patterns: (items / 10).max(4),
            corruption: 0.25,
            seed,
        }
    }
}

/// The generated baskets plus the pattern pool (ground truth for tests).
#[derive(Debug)]
pub struct BasketData {
    pub matrix: SparseMatrix,
    /// The potentially-large itemsets, sorted item lists.
    pub patterns: Vec<Vec<ColumnId>>,
}

fn geometric_around<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let mut len = 1;
    while rng.gen::<f64>() < 1.0 - 1.0 / mean {
        len += 1;
    }
    len
}

/// Generates the basket matrix.
#[must_use]
pub fn basket(config: &BasketConfig) -> BasketData {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Pattern pool: sizes geometric, half the items shared with the
    // previous pattern (the Quest correlation), the rest uniform.
    let mut patterns: Vec<Vec<ColumnId>> = Vec::with_capacity(config.patterns);
    for p in 0..config.patterns {
        let size = geometric_around(&mut rng, config.avg_pattern_size).min(config.items);
        let mut items: Vec<ColumnId> = Vec::with_capacity(size);
        if p > 0 {
            let prev = &patterns[p - 1];
            for &item in prev.iter().take(size / 2) {
                items.push(item);
            }
        }
        while items.len() < size {
            items.push(rng.gen_range(0..config.items as ColumnId));
        }
        items.sort_unstable();
        items.dedup();
        patterns.push(items);
    }
    // Pattern weights: exponential-ish, favoring early patterns.
    let weights: Vec<f64> = (0..config.patterns)
        .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(config.patterns);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_weight;
        cumulative.push(acc);
    }

    let mut builder = MatrixBuilder::with_capacity(
        config.items,
        config.transactions,
        (config.transactions as f64 * config.avg_transaction_size) as usize,
    );
    for _ in 0..config.transactions {
        let target = geometric_around(&mut rng, config.avg_transaction_size);
        let mut row: Vec<ColumnId> = Vec::with_capacity(target + 4);
        while row.len() < target {
            let u: f64 = rng.gen();
            let p = cumulative
                .partition_point(|&c| c < u)
                .min(config.patterns - 1);
            for &item in &patterns[p] {
                if rng.gen::<f64>() >= config.corruption {
                    row.push(item);
                }
            }
        }
        builder.push_row(row);
    }
    BasketData {
        matrix: builder.finish(),
        patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = BasketConfig::new(800, 200, 3);
        let a = basket(&cfg);
        let b = basket(&cfg);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.matrix.n_rows(), 800);
        assert_eq!(a.matrix.n_cols(), 200);
        assert_eq!(a.patterns.len(), cfg.patterns);
    }

    #[test]
    fn transaction_sizes_center_on_target() {
        let cfg = BasketConfig::new(3000, 400, 7);
        let data = basket(&cfg);
        let avg = data.matrix.nnz() as f64 / data.matrix.n_rows() as f64;
        assert!(
            avg > 5.0 && avg < 25.0,
            "avg basket size {avg} should be near {}",
            cfg.avg_transaction_size
        );
    }

    #[test]
    fn pattern_items_cooccur_more_than_chance() {
        let cfg = BasketConfig::new(4000, 300, 11);
        let data = basket(&cfg);
        // Pick the first pattern with >= 2 items and measure its pair lift.
        let pattern = data
            .patterns
            .iter()
            .find(|p| p.len() >= 2)
            .expect("some pattern has >= 2 items");
        let (a, b) = (pattern[0], pattern[1]);
        let ones = data.matrix.column_ones();
        let mut both = 0u32;
        for row in data.matrix.rows() {
            if row.binary_search(&a).is_ok() && row.binary_search(&b).is_ok() {
                both += 1;
            }
        }
        let n = data.matrix.n_rows() as f64;
        let expected_independent = f64::from(ones[a as usize]) * f64::from(ones[b as usize]) / n;
        assert!(
            f64::from(both) > 1.5 * expected_independent,
            "lift too low: {both} observed vs {expected_independent:.1} at independence"
        );
    }

    #[test]
    fn patterns_are_valid_itemsets() {
        let data = basket(&BasketConfig::new(100, 50, 1));
        for p in &data.patterns {
            assert!(!p.is_empty());
            assert!(p.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(p.iter().all(|&i| (i as usize) < 50));
        }
    }
}
