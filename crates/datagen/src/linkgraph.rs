//! `plinkF` / `plinkT` analogue: a web-page link graph.
//!
//! The paper's link data is the Stanford crawl: ~700k pages, power-law
//! degrees, and — crucially for Fig 6(e),(f) — a large population of
//! columns with frequency ≤ 4, which is why the DMC-bitmap phase jumps when
//! the threshold drops to 75% (frequency-4 columns stop being prunable).
//!
//! The generator grows a directed graph by preferential attachment (new
//! pages link to existing pages proportionally to in-degree, plus uniform
//! noise), then emits the two matrices the paper mines:
//!
//! * `forward` (`plinkF`): rows = source pages, columns = destinations —
//!   similar columns are pages **cited by the same pages**;
//! * `transposed` (`plinkT`): rows = destinations, columns = sources —
//!   similar columns are pages **with similar outgoing link sets**.

use dmc_matrix::transform::transpose;
use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`link_graph`].
#[derive(Clone, Debug)]
pub struct LinkGraphConfig {
    /// Number of pages (rows and columns of both matrices).
    pub pages: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Probability that a link follows preferential attachment (otherwise
    /// uniform) — higher = heavier tail.
    pub preferential: f64,
    /// Number of mirrored page pairs: page `2i` and `2i+1` (for small `i`)
    /// share almost identical link sets, seeding similarity rules.
    pub mirror_pairs: usize,
    pub seed: u64,
}

impl LinkGraphConfig {
    /// Defaults shaped like the paper's crawl at laptop scale.
    #[must_use]
    pub fn new(pages: usize, seed: u64) -> Self {
        Self {
            pages,
            mean_out_degree: 8.0,
            preferential: 0.75,
            mirror_pairs: (pages / 100).max(1),
            seed,
        }
    }
}

/// Both orientations of the generated graph.
#[derive(Debug)]
pub struct LinkGraphs {
    /// Rows = sources, columns = destinations (`plinkF`).
    pub forward: SparseMatrix,
    /// Rows = destinations, columns = sources (`plinkT`).
    pub transposed: SparseMatrix,
}

/// Generates the link graph and returns both matrix orientations.
#[must_use]
pub fn link_graph(config: &LinkGraphConfig) -> LinkGraphs {
    let n = config.pages;
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Repeated-target list for preferential attachment: sampling uniformly
    // from it is proportional to in-degree.
    let mut targets: Vec<ColumnId> = Vec::with_capacity(n * 4);
    let mut out_links: Vec<Vec<ColumnId>> = Vec::with_capacity(n);

    for page in 0..n {
        let mut degree = 1;
        while rng.gen::<f64>() < 1.0 - 1.0 / config.mean_out_degree {
            degree += 1;
        }
        let mut links: Vec<ColumnId> = Vec::with_capacity(degree);
        for _ in 0..degree {
            let dest = if !targets.is_empty() && rng.gen::<f64>() < config.preferential {
                targets[rng.gen_range(0..targets.len())]
            } else {
                rng.gen_range(0..n as ColumnId)
            };
            if dest != page as ColumnId {
                links.push(dest);
            }
        }
        links.sort_unstable();
        links.dedup();
        targets.extend_from_slice(&links);
        out_links.push(links);
    }

    // Mirrors: page 2i+1 copies page 2i's link set with slight noise.
    for i in 0..config.mirror_pairs {
        let (a, b) = (2 * i, 2 * i + 1);
        if b >= n {
            break;
        }
        let mut copy = out_links[a].clone();
        // Perturb only sets large enough to stay above ~0.75 Jaccard.
        if copy.len() >= 4 && rng.gen::<f64>() < 0.3 {
            let drop = rng.gen_range(0..copy.len());
            copy.remove(drop);
        }
        copy.retain(|&d| d != b as ColumnId);
        out_links[b] = copy;
    }

    let mut builder = MatrixBuilder::with_capacity(n, n, targets.len());
    for links in &out_links {
        builder.push_sorted_row(links);
    }
    let forward = builder.finish();
    let transposed = transpose(&forward);
    LinkGraphs {
        forward,
        transposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::stats::column_density_counts;

    #[test]
    fn deterministic_and_square() {
        let cfg = LinkGraphConfig::new(300, 9);
        let a = link_graph(&cfg);
        let b = link_graph(&cfg);
        assert_eq!(a.forward, b.forward);
        assert_eq!(a.forward.n_rows(), 300);
        assert_eq!(a.forward.n_cols(), 300);
        assert_eq!(a.transposed, transpose(&a.forward));
    }

    #[test]
    fn in_degree_is_heavy_tailed_with_low_frequency_mass() {
        let cfg = LinkGraphConfig::new(2000, 13);
        let g = link_graph(&cfg);
        let counts = column_density_counts(&g.forward);
        // The paper's plinkT jump at 75% comes from many frequency-<=4
        // columns.
        let low: usize = counts.iter().take(5).sum();
        assert!(
            low > g.forward.n_cols() / 3,
            "low-frequency columns: {low} of {}",
            g.forward.n_cols()
        );
        // And a heavy head: some column far above the mean in-degree.
        let max = counts.len() - 1;
        assert!(max > 40, "max in-degree {max}");
    }

    #[test]
    fn mirrors_share_link_sets() {
        let mut cfg = LinkGraphConfig::new(400, 4);
        cfg.mirror_pairs = 10;
        let g = link_graph(&cfg);
        // Out-link rows of a mirror pair differ by at most one link.
        let (r0, r1) = (g.forward.row(0), g.forward.row(1));
        let shared = r0.iter().filter(|c| r1.binary_search(c).is_ok()).count();
        assert!(
            shared + 1 >= r0.len().min(r1.len()),
            "mirrors nearly identical"
        );
    }

    #[test]
    fn no_self_links() {
        let g = link_graph(&LinkGraphConfig::new(150, 2));
        for (page, row) in g.forward.rows().enumerate() {
            assert!(row.binary_search(&(page as ColumnId)).is_err());
        }
    }
}
