//! Synthetic data sets for the DMC reproduction.
//!
//! The paper evaluates on four corpora (§6.1, Table 1) that are not
//! redistributable: Stanford web-server access logs (`Wlog`), the Stanford
//! web-link graph (`plinkF`/`plinkT`), Reuters news documents (`News`), and
//! the 1913 Webster dictionary (`dicD`). This crate generates structurally
//! faithful stand-ins: what DMC's behaviour depends on is the *shape* of
//! the 0/1 matrix — heavy-tailed row and column densities, near-duplicate
//! columns, topical co-occurrence — and each generator reproduces the shape
//! that drives the corresponding experiment (see `DESIGN.md` §4 for the
//! substitution table).
//!
//! All generators are deterministic in their seed.

pub mod basket;
pub mod dictionary;
pub mod linkgraph;
pub mod news;
pub mod planted;
pub mod weblog;
pub mod zipf;

pub use basket::{basket, BasketConfig, BasketData};
pub use dictionary::{dictionary, DictionaryConfig};
pub use linkgraph::{link_graph, LinkGraphConfig, LinkGraphs};
pub use news::{news, NewsConfig, NewsData};
pub use planted::{planted_implications, PlantedConfig, PlantedData};
pub use weblog::{weblog, WeblogConfig};
