//! Zipf sampling — the workhorse of every generator here.
//!
//! Web page popularity, word frequency, client activity and vertex degree
//! are all heavy-tailed; the paper's Fig 4 column-density distributions are
//! straight lines on log-log axes. A Zipf(`s`) sampler over ranks `1..=n`
//! reproduces that shape.

use rand::Rng;

/// A Zipf(`s`) distribution over `{0, 1, …, n−1}` (rank 0 most likely),
/// sampled by inversion on a precomputed CDF (O(log n) per draw).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there are no ranks (never — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Roughly Zipfian head: rank 0 ≈ 2x rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(ratio > 1.5 && ratio < 3.5, "ratio={ratio}");
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "counts={counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        let _ = Zipf::new(0, 1.0);
    }
}
