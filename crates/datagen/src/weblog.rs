//! `Wlog` analogue: web-server access logs.
//!
//! Rows are client IPs, columns are URLs; an entry is 1 when the client hit
//! the URL (§6.1). The structure that matters to DMC:
//!
//! * URL popularity is Zipfian (Fig 4's straight-line column densities);
//! * most clients touch a handful of URLs, but "a few clients such as Web
//!   crawlers … access all pages on the site" (§4.1) — those near-full rows
//!   are what makes sparsest-first ordering pay off and what triggers the
//!   §4.2 memory explosion;
//! * correlated browsing: clients follow sessions through related pages,
//!   which is what produces high-confidence implication rules between
//!   URLs.

use crate::zipf::Zipf;
use dmc_matrix::{ColumnId, MatrixBuilder, SparseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`weblog`].
#[derive(Clone, Debug)]
pub struct WeblogConfig {
    /// Clients (rows).
    pub clients: usize,
    /// URLs (columns).
    pub urls: usize,
    /// Zipf exponent of URL popularity.
    pub popularity_exponent: f64,
    /// Mean URLs per ordinary client (geometric-ish session length).
    pub mean_session: f64,
    /// Number of crawler rows touching `crawler_coverage` of all URLs.
    pub crawlers: usize,
    /// Fraction of URLs a crawler hits.
    pub crawler_coverage: f64,
    /// Number of "hub" URL chains: consecutive URL pairs `(u, u+1)` where
    /// visiting `u` almost always implies visiting `u+1` (navigation
    /// hierarchies) — the source of high-confidence rules.
    pub hub_chains: usize,
    pub seed: u64,
}

impl WeblogConfig {
    /// A laptop-scale default shaped like `Wlog` (heavy-tailed, a few
    /// crawlers).
    #[must_use]
    pub fn new(clients: usize, urls: usize, seed: u64) -> Self {
        Self {
            clients,
            urls,
            popularity_exponent: 1.0,
            mean_session: 6.0,
            crawlers: (clients / 2000).max(2),
            crawler_coverage: 0.8,
            hub_chains: (urls / 50).max(1),
            seed,
        }
    }
}

/// Generates the access-log matrix.
#[must_use]
pub fn weblog(config: &WeblogConfig) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let popularity = Zipf::new(config.urls, config.popularity_exponent);
    let mut builder = MatrixBuilder::with_capacity(
        config.urls,
        config.clients,
        (config.clients as f64 * config.mean_session) as usize,
    );

    // Crawler rows are interleaved through the log (a crawler hits the
    // site at arbitrary times), at evenly spaced deterministic positions.
    let crawlers = config.crawlers.min(config.clients);
    let ordinary = config.clients - crawlers;
    let stride = if crawlers == 0 {
        usize::MAX
    } else {
        config.clients / (crawlers + 1)
    };
    let mut emitted_crawlers = 0;
    for i in 0..config.clients {
        let crawler_due =
            crawlers > 0 && emitted_crawlers < crawlers && (i + 1) % stride.max(1) == 0;
        if crawler_due || i >= ordinary + emitted_crawlers {
            let row: Vec<ColumnId> = (0..config.urls as ColumnId)
                .filter(|_| rng.gen::<f64>() < config.crawler_coverage)
                .collect();
            builder.push_row(row);
            emitted_crawlers += 1;
            continue;
        }
        // Session length: 1 + geometric with the configured mean.
        let mut len = 1;
        while rng.gen::<f64>() < 1.0 - 1.0 / config.mean_session {
            len += 1;
        }
        let mut row: Vec<ColumnId> = Vec::with_capacity(len + 2);
        for _ in 0..len {
            let url = popularity.sample(&mut rng) as ColumnId;
            row.push(url);
            // Hub chains: visiting a chain member usually pulls in its
            // successor (a navigation click-through).
            if (url as usize) < config.hub_chains * 2 && url % 2 == 0 && rng.gen::<f64>() < 0.95 {
                row.push(url + 1);
            }
        }
        builder.push_row(row);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::stats::matrix_stats;

    #[test]
    fn deterministic_in_seed() {
        let cfg = WeblogConfig::new(200, 100, 7);
        assert_eq!(weblog(&cfg), weblog(&cfg));
        let other = WeblogConfig::new(200, 100, 8);
        assert_ne!(weblog(&cfg), weblog(&other));
    }

    #[test]
    fn shape_matches_config() {
        let cfg = WeblogConfig::new(500, 120, 1);
        let m = weblog(&cfg);
        assert_eq!(m.n_rows(), 500);
        assert_eq!(m.n_cols(), 120);
    }

    #[test]
    fn crawler_rows_are_near_full() {
        let mut cfg = WeblogConfig::new(300, 200, 3);
        cfg.crawlers = 3;
        let m = weblog(&cfg);
        let stats = matrix_stats(&m);
        // Crawlers cover ~80% of 200 columns; ordinary sessions ~6.
        assert!(stats.max_row_density > 120, "max={}", stats.max_row_density);
        assert!(
            stats.avg_row_density < 15.0,
            "avg={}",
            stats.avg_row_density
        );
    }

    #[test]
    fn url_popularity_is_heavy_tailed() {
        let cfg = WeblogConfig::new(2000, 300, 5);
        let m = weblog(&cfg);
        let mut ones = m.column_ones();
        ones.sort_unstable_by(|a, b| b.cmp(a));
        // Top URL is much more popular than the median one.
        assert!(
            ones[0] > ones[150].max(1) * 5,
            "head={} median={}",
            ones[0],
            ones[150]
        );
    }

    #[test]
    fn hub_chains_create_high_confidence_rules() {
        let mut cfg = WeblogConfig::new(3000, 100, 11);
        cfg.crawlers = 0;
        cfg.hub_chains = 5;
        let m = weblog(&cfg);
        let ones = m.column_ones();
        // Count hits of (0, 1) by scanning.
        let mut hits = 0u32;
        for row in m.rows() {
            if row.binary_search(&0).is_ok() && row.binary_search(&1).is_ok() {
                hits += 1;
            }
        }
        assert!(ones[0] > 20, "chain head occurs often");
        assert!(
            f64::from(hits) / f64::from(ones[0]) > 0.9,
            "visiting URL 0 implies URL 1: {hits}/{}",
            ones[0]
        );
    }
}
