//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Drop-in for `rand::rngs::StdRng`: xoshiro256++ (Blackman & Vigna).
/// Deterministic per seed; not bit-compatible with upstream.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}
