//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and an empty registry cache, so
//! the real `rand` cannot be fetched. This crate implements the small API
//! subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}` — on top of xoshiro256++ seeded via
//! SplitMix64. Streams are deterministic per seed but intentionally NOT
//! bit-compatible with upstream `rand`; workspace tests only rely on
//! determinism and reasonable statistical quality, never on upstream values.

pub mod rngs;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their "natural" domain (`Rng::gen`).
/// Floats sample from `[0, 1)`, matching upstream's `Standard`.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % width as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = StandardSample::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
