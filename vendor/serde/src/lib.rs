//! Offline placeholder for the `serde` crate.
//!
//! The workspace's `serde` integrations are optional features that stay OFF
//! in this network-less build container; this placeholder only exists so the
//! optional dependency edges resolve without registry access. It provides no
//! derive macros or traits — restore the real `serde` (and `serde_json`)
//! before enabling any `serde` feature.

compile_error!(
    "the vendored `serde` placeholder was compiled: a `serde` feature was \
     enabled, but offline builds cannot provide the real crate. Disable the \
     feature or restore network access and the upstream dependency."
);
