//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion` cannot
//! be fetched. This crate keeps the workspace's benches compiling and
//! running: `Criterion::bench_function`, `benchmark_group` /
//! `bench_with_input` / `finish`, `BenchmarkId::from_parameter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then enough
//! iterations to fill a fixed measurement window, reporting the mean — with
//! none of upstream's statistics. `cargo bench -- --test` (the CI smoke
//! mode) runs every closure exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse the CLI args cargo-bench forwards after `--`. Only `--test` and
    /// a positional name filter are honoured; everything else is ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--profile-time" | "--sample-size" | "--measurement-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, |b| f(b));
        self
    }

    #[must_use]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            mean: None,
        };
        f(&mut bencher);
        match bencher.mean {
            Some(mean) => println!("bench {name:<48} {}", format_duration(mean)),
            None => println!("bench {name:<48} ok (test mode)"),
        }
    }
}

pub struct Bencher {
    test_mode: bool,
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters = (MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:>10.3} s/iter", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:>10.3} ms/iter", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:>10.3} µs/iter", nanos as f64 / 1e3)
    } else {
        format!("{nanos:>10} ns/iter")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}
