//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network access, so the real `bytes` cannot be
//! fetched. This crate provides the `Buf` / `BufMut` cursor subset the
//! workspace's binary matrix codec uses: little-endian integer reads and
//! writes over `&[u8]` and `Vec<u8>`.

/// Read cursor. Implemented for `&[u8]`, which advances in place as
/// upstream's impl does.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor. Implemented for `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        buf.put_slice(b"hdr");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let mut cursor: &[u8] = &buf;
        let mut hdr = [0u8; 3];
        cursor.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.remaining(), 8);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.remaining(), 0);
    }
}
