//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Size specifications accepted by the collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

#[must_use]
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // The element domain may be smaller than the target size; bail out
        // after a bounded number of duplicate draws (upstream rejects the
        // whole case instead — for these tests a smaller set is equivalent).
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 50;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
