//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real `proptest` cannot
//! be fetched. This crate implements the subset the workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `Strategy` with
//! `prop_map` / `prop_flat_map` / `boxed`, range and `Just` strategies,
//! tuple strategies, `collection::{vec, btree_set}`, `any`, `prop_oneof!`,
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case prints its inputs
//! and panics as-is), and value streams are deterministic per test + case
//! index rather than globally random. `PROPTEST_CASES` overrides the case
//! count, as upstream does.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body. Upstream returns a `TestCaseError`; here
/// a plain panic is equivalent because the runner reports inputs on unwind.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Choose uniformly between heterogeneous strategies with a common value
/// type. Upstream supports `weight => strategy` arms; the workspace only
/// uses the unweighted form.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0..10usize, m in matrix_strategy(24, 14)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases = $crate::test_runner::case_count(config.cases);
            for case in 0..cases {
                let mut runner_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &$strategy,
                        &mut runner_rng,
                    );
                )+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {case}/{cases} with inputs:\n{inputs}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
