//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values. Unlike upstream there is no value tree /
/// shrinking; `generate` produces the final value directly.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator (the `any::<T>()` backend).
pub trait Arbitrary: Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
