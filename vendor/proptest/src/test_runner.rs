//! Deterministic per-case RNG and run configuration.

/// Mirrors the `ProptestConfig` fields the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolve the effective case count (`PROPTEST_CASES` wins, as upstream).
#[must_use]
pub fn case_count(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// SplitMix64-based generator, seeded from the test path and case index so
/// every test gets a reproducible but distinct stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
