//! Web-access-log mining (the paper's `Wlog` scenario, §6.1).
//!
//! Builds a synthetic access log — clients × URLs with Zipfian popularity,
//! navigation chains and a few crawler clients — then mines implication
//! rules "clients who fetch URL A also fetch URL B" without any support
//! pruning, so rules about rarely-visited pages survive.
//!
//! ```text
//! cargo run --release -p dmc-examples --bin weblog_analysis
//! ```

use dmc_core::{find_implications, ImplicationConfig, RowOrder};
use dmc_datagen::{weblog, WeblogConfig};
use dmc_examples::section;
use dmc_matrix::stats::matrix_stats;

fn main() {
    let config = WeblogConfig::new(20_000, 3_000, 42);
    let matrix = weblog(&config);
    let stats = matrix_stats(&matrix);
    println!(
        "access log: {} clients x {} URLs, {} hits (max client touched {} URLs)",
        stats.rows, stats.cols, stats.nnz, stats.max_row_density
    );

    section("implication rules at 90% confidence (no support pruning)");
    let out = find_implications(&matrix, &ImplicationConfig::new(0.9));
    println!("  {} rules found", out.rules.len());
    for rule in out.rules.iter().take(10) {
        println!(
            "  visitors of /page{} also fetch /page{}  ({:.0}% of {})",
            rule.lhs,
            rule.rhs,
            rule.confidence() * 100.0,
            rule.lhs_ones
        );
    }
    for (phase, time) in out.phases.phases() {
        println!("  phase {phase:<12} {:.3}s", time.as_secs_f64());
    }

    section("memory: sparsest-first vs original row order");
    for (label, order) in [
        ("bucketed sparsest-first", RowOrder::BucketedSparsestFirst),
        ("original order", RowOrder::Original),
    ] {
        let cfg = ImplicationConfig::new(0.9).with_row_order(order);
        let run = find_implications(&matrix, &cfg);
        println!(
            "  {label:<24} peak counter array: {:>9} candidate entries",
            run.memory.peak_candidates()
        );
    }
}
