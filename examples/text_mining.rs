//! Text mining news documents (§6.3 / Fig 7 of the paper).
//!
//! Mines high-confidence implication rules between words of a synthetic
//! Reuters-like corpus, then expands all rules reachable from the keyword
//! "polgar" recursively — reproducing the paper's Judit Polgar example
//! (rules like `polgar -> chess`, `polgar -> kasparov`, `garri -> chess`).
//!
//! ```text
//! cargo run --release -p dmc-examples --bin text_mining
//! ```

use dmc_core::{find_implications, ImplicationConfig};
use dmc_datagen::{news, NewsConfig};
use dmc_examples::section;
use dmc_matrix::transform::prune_min_support;

/// Human-readable names for topic-0 words (the Polgar story).
const POLGAR_WORDS: [&str; 13] = [
    "polgar",
    "chess",
    "judit",
    "grandmaster",
    "kasparov",
    "champion",
    "soviet",
    "hungary",
    "international",
    "top",
    "youngest",
    "players",
    "federation",
];

fn main() {
    let data = news(&NewsConfig::new(12_000, 8_000, 2026));
    println!(
        "corpus: {} documents x {} words",
        data.matrix.n_rows(),
        data.matrix.n_cols()
    );

    // The paper prunes words used fewer than 5 times before mining.
    let pruned = prune_min_support(&data.matrix, 5);
    let out = find_implications(&pruned.matrix, &ImplicationConfig::new(0.85));
    println!("{} rules at 85% confidence", out.rules.len());

    // Name a column: topic-0 words get the Polgar vocabulary.
    let name = |pruned_id: u32| -> String {
        let orig = pruned.original_id(pruned_id);
        if (orig as usize) < POLGAR_WORDS.len() && data.themes[0].contains(&orig)
            || Some(&orig) == data.anchors.first()
        {
            POLGAR_WORDS[orig as usize].to_string()
        } else {
            format!("word{orig}")
        }
    };

    section("rules reachable from 'polgar' (recursive closure, as in Fig 7)");
    let seed = pruned
        .original_ids
        .iter()
        .position(|&c| Some(&c) == data.anchors.first())
        .expect("anchor survives support pruning") as u32;
    let mut frontier = vec![seed];
    let mut seen = vec![seed];
    let mut printed = 0;
    while let Some(lhs) = frontier.pop() {
        for rule in out.rules.iter().filter(|r| r.lhs == lhs) {
            println!(
                "  {} -> {}  ({:.0}%)",
                name(rule.lhs),
                name(rule.rhs),
                rule.confidence() * 100.0
            );
            printed += 1;
            if !seen.contains(&rule.rhs) {
                seen.push(rule.rhs);
                frontier.push(rule.rhs);
            }
        }
    }
    println!("  ({printed} rules in the closure)");
}
