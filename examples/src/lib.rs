//! Shared helpers for the example binaries.

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}
