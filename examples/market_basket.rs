//! Market-basket analysis: DMC pair rules next to full a-priori itemset
//! mining on Quest-style synthetic baskets.
//!
//! Shows the trade the paper is about: a-priori finds multi-item rules but
//! only above a support floor; DMC finds *every* high-confidence pair rule,
//! including ones whose support would never clear an a-priori threshold.
//!
//! ```text
//! cargo run --release -p dmc-examples --bin market_basket
//! ```

use dmc_baselines::apriori::{frequent_itemsets, rules_from_itemsets};
use dmc_core::{find_implications, ImplicationConfig};
use dmc_datagen::{basket, BasketConfig};
use dmc_examples::section;
use std::time::Instant;

fn main() {
    let config = BasketConfig::new(20_000, 1_000, 77);
    let data = basket(&config);
    println!(
        "baskets: {} transactions x {} items, {} entries ({} planted patterns)",
        data.matrix.n_rows(),
        data.matrix.n_cols(),
        data.matrix.nnz(),
        data.patterns.len()
    );

    section("a-priori: frequent itemsets at 1% support, rules at 80%");
    let min_support = (data.matrix.n_rows() / 100) as u32;
    let start = Instant::now();
    let itemsets = frequent_itemsets(&data.matrix, min_support, 4);
    let itemset_rules = rules_from_itemsets(&itemsets, 0.8);
    println!(
        "  {} frequent itemsets, {} rules in {:.3}s",
        itemsets.len(),
        itemset_rules.len(),
        start.elapsed().as_secs_f64()
    );
    for rule in itemset_rules
        .iter()
        .filter(|r| r.antecedent.len() >= 2)
        .take(5)
    {
        let ante: Vec<String> = rule.antecedent.iter().map(|i| format!("item{i}")).collect();
        let cons: Vec<String> = rule.consequent.iter().map(|i| format!("item{i}")).collect();
        println!(
            "  {{{}}} => {{{}}}  (conf {:.2}, support {})",
            ante.join(", "),
            cons.join(", "),
            rule.confidence,
            rule.support
        );
    }

    section("DMC: all pair rules at 80% confidence, no support floor");
    let start = Instant::now();
    let dmc = find_implications(&data.matrix, &ImplicationConfig::new(0.8));
    println!(
        "  {} pair rules in {:.3}s (peak counter array {} entries)",
        dmc.rules.len(),
        start.elapsed().as_secs_f64(),
        dmc.memory.peak_candidates()
    );
    let below_floor = dmc.rules.iter().filter(|r| r.hits < min_support).count();
    println!(
        "  {below_floor} of those rules live below a-priori's {min_support}-transaction \
         support floor — invisible to support pruning"
    );
}
