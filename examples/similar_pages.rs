//! Finding similar web pages from a link graph (Example 1.1 / `plink`).
//!
//! Transforms a page-link graph into two 0/1 matrices and mines similarity
//! rules in both: in the forward matrix similar columns are pages *cited by
//! the same pages*; in the transpose they are pages *with similar outgoing
//! links*. Support pruning would only ever find hub pages; DMC's
//! confidence pruning finds the long-tail mirrors too.
//!
//! ```text
//! cargo run --release -p dmc-examples --bin similar_pages
//! ```

use dmc_core::{find_similarities, SimilarityConfig};
use dmc_datagen::{link_graph, LinkGraphConfig};
use dmc_examples::section;
use dmc_matrix::stats::matrix_stats;

fn main() {
    let mut config = LinkGraphConfig::new(8_000, 7);
    config.mirror_pairs = 40;
    let graphs = link_graph(&config);

    for (name, matrix, meaning) in [
        (
            "plinkF",
            &graphs.forward,
            "pages referenced by similar sets of pages",
        ),
        (
            "plinkT",
            &graphs.transposed,
            "pages having similar sets of links",
        ),
    ] {
        let stats = matrix_stats(matrix);
        section(&format!("{name}: {meaning}"));
        println!(
            "  {} x {} matrix, {} links",
            stats.rows, stats.cols, stats.nnz
        );
        let out = find_similarities(matrix, &SimilarityConfig::new(0.7));
        println!("  {} similar page pairs at Jaccard >= 0.7", out.rules.len());
        for rule in out.rules.iter().take(8) {
            println!(
                "  page{} ~ page{}  (sim {:.2}: {} shared of {})",
                rule.a,
                rule.b,
                rule.similarity(),
                rule.hits,
                rule.union()
            );
        }
        match out.bitmap_switch_at {
            Some(pos) => println!("  (switched to the bitmap phase after {pos} rows)"),
            None => println!("  (no bitmap switch needed)"),
        }
    }
}
