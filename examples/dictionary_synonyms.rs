//! Finding near-synonyms in a dictionary (`dicD`, §6.1).
//!
//! Columns are head words, rows are definition words; two head words whose
//! definitions use nearly the same vocabulary (brother-in-law /
//! sister-in-law in the paper) surface as similarity rules. Also contrasts
//! DMC-sim with the Min-Hash baseline on the same task.
//!
//! ```text
//! cargo run --release -p dmc-examples --bin dictionary_synonyms
//! ```

use dmc_baselines::minhash::{minhash_similarities, MinHashConfig};
use dmc_core::{find_similarities, SimilarityConfig};
use dmc_datagen::{dictionary, DictionaryConfig};
use dmc_examples::section;
use std::time::Instant;

fn main() {
    let mut config = DictionaryConfig::new(6_000, 3_500, 13);
    config.synonym_pairs = 60;
    let matrix = dictionary(&config);
    println!(
        "dictionary: {} head words, {} definition words, {} links",
        matrix.n_cols(),
        matrix.n_rows(),
        matrix.nnz()
    );

    section("DMC-sim: exact synonym pairs at Jaccard >= 0.8");
    let start = Instant::now();
    let out = find_similarities(&matrix, &SimilarityConfig::new(0.8));
    let dmc_time = start.elapsed();
    println!(
        "  {} pairs in {:.3}s",
        out.rules.len(),
        dmc_time.as_secs_f64()
    );
    for rule in out.rules.iter().take(8) {
        println!(
            "  headword{} ~ headword{}  (definitions share {} of {} words)",
            rule.a,
            rule.b,
            rule.hits,
            rule.union()
        );
    }

    section("Min-Hash baseline on the same task (verified candidates)");
    let start = Instant::now();
    let mh = minhash_similarities(&matrix, 0.8, &MinHashConfig::new(96).with_banding(24, 4));
    let mh_time = start.elapsed();
    let missed = out.rules.iter().filter(|r| !mh.rules.contains(r)).count();
    println!(
        "  {} pairs in {:.3}s ({} candidates checked, {} false negatives vs DMC)",
        mh.rules.len(),
        mh_time.as_secs_f64(),
        mh.candidates,
        missed
    );
}
