//! Quickstart: mine implication and similarity rules from a small
//! transaction matrix — the Figure 1 / Figure 2 walk of the paper.
//!
//! ```text
//! cargo run -p dmc-examples --bin quickstart
//! ```

use dmc_core::{
    find_implications, find_similarities, ImplicationConfig, SimilarityConfig, SparseMatrix,
};
use dmc_examples::section;

fn main() {
    // Rows are transactions (baskets), columns are items. This is the
    // paper's Figure 2 matrix: six items, nine baskets.
    let matrix = SparseMatrix::from_rows(
        6,
        vec![
            vec![1, 5],
            vec![2, 3, 4],
            vec![2, 4],
            vec![0, 1, 2, 5],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![3, 5],
            vec![0, 1, 4],
        ],
    );

    section("implication rules at 80% confidence");
    let out = find_implications(&matrix, &ImplicationConfig::new(0.8));
    for rule in &out.rules {
        println!("  {rule}");
    }
    println!(
        "  ({} rules; phases: {:?})",
        out.rules.len(),
        out.phases.phases()
    );

    section("implication rules at 80% confidence, both directions");
    let out = find_implications(&matrix, &ImplicationConfig::new(0.8).with_reverse(true));
    for rule in &out.rules {
        println!("  {rule}");
    }

    section("similarity rules at 60% Jaccard");
    let out = find_similarities(&matrix, &SimilarityConfig::new(0.6));
    for rule in &out.rules {
        println!("  {rule}");
    }
    println!(
        "  peak counter-array: {} candidate entries",
        out.memory.peak_candidates()
    );
}
