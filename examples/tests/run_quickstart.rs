//! Smoke test: the quickstart example runs and prints the paper's rules.

use std::process::Command;

#[test]
fn quickstart_prints_fig2_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_quickstart"))
        .output()
        .expect("run quickstart");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("c0 => c1"), "{stdout}");
    assert!(stdout.contains("c2 => c4"), "{stdout}");
    assert!(stdout.contains("similarity rules"), "{stdout}");
}
