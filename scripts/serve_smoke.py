#!/usr/bin/env python3
"""Smoke-test the rule-serving daemon over its real TCP wire protocol.

Usage: serve_smoke.py DMC_BINARY DATA_FILE [METRICS_FILE]

    DMC_BINARY    path to the `dmc` CLI (the script runs `dmc serve`)
    DATA_FILE     transaction file to mine and serve
    METRICS_FILE  optional --metrics destination; the daemon writes its
                  v8 run report there after shutdown

Starts `dmc serve DATA_FILE --minconf 0.9 --addr 127.0.0.1:0
--telemetry-addr 127.0.0.1:0`, waits for the `telemetry on` and
`listening on HOST:PORT` lines, then exercises every request type over
one connection: `stats`, `rule`, `rules_ge`, a garbage frame (which
must produce an error response without killing the connection),
`ingest`, `metrics` — whose per-request-type histogram counts must sum
exactly to the frames sent so far — and finally `shutdown`. Between
`metrics` and `shutdown` it scrapes the Prometheus exposition listener
once and asserts the same reconciliation there. Asserts the daemon
exits 0 and, when METRICS_FILE is given, that the report carries
non-null `serve`, `ingest` and `telemetry` sections consistent with
what the script did.

Exits 0 on success, 1 with a diagnostic otherwise. CI runs this in the
serve-smoke job; the Rust test suite covers the same surface in-process
(crates/serve), so this script guards the shipped binary end to end.
"""

import json
import os
import socket
import struct
import subprocess
import sys
import time


def send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def recv_frame(sock) -> dict:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        assert chunk, "connection closed while reading a frame header"
        header += chunk
    (length,) = struct.unpack(">I", header)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        assert chunk, "connection closed mid-payload"
        payload += chunk
    return json.loads(payload)


def request(sock, obj: dict) -> dict:
    send_frame(sock, json.dumps(obj).encode())
    return recv_frame(sock)


def parse_addr(line: str) -> tuple:
    host, _, port = line.rpartition(" ")[2].rpartition(":")
    return host.strip("[]"), int(port)


def wait_for_listen_line(proc, timeout=60.0) -> tuple:
    """Returns ((host, port), (telemetry_host, telemetry_port) or None).

    The daemon prints `telemetry on HOST:PORT` (when scraping is on)
    strictly before `listening on HOST:PORT`.
    """
    telemetry = None
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"daemon exited before announcing readiness "
                f"(code {proc.poll()})")
        line = line.strip()
        print(f"daemon: {line}")
        if line.startswith("telemetry on "):
            telemetry = parse_addr(line)
        if line.startswith("listening on "):
            return parse_addr(line), telemetry
    raise AssertionError("timed out waiting for the listening line")


def scrape_exposition(addr) -> str:
    """One plain-HTTP scrape of the Prometheus text exposition."""
    with socket.create_connection(addr, timeout=30) as sock:
        sock.settimeout(30)
        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head.splitlines()[0], head
    return body.decode()


def prometheus_counts(body: str, prefix: str) -> dict:
    """Histogram totals: `<name>_count VALUE` lines under `prefix`."""
    counts = {}
    for line in body.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition(" ")
        if name.startswith(prefix) and name.endswith("_count"):
            counts[name] = int(float(value))
    return counts


def check(binary, data, metrics):
    cmd = [binary, "serve", data, "--minconf", "0.9",
           "--addr", "127.0.0.1:0", "--telemetry-addr", "127.0.0.1:0"]
    if metrics:
        cmd += ["--metrics", metrics]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    try:
        (host, port), telemetry_addr = wait_for_listen_line(proc)
        assert telemetry_addr is not None, "no 'telemetry on' line"
        sock = socket.create_connection((host, port), timeout=30)
        sock.settimeout(30)
        with sock:
            stats = request(sock, {"type": "stats"})
            assert stats["ok"] is True, stats
            s = stats["stats"]
            assert s["algorithm"] == "implication", s
            assert s["rules"] > 0, f"mined rule set is empty: {s}"
            rows_before = s["rows"]

            answer = request(sock, {"type": "rule", "lhs": 0, "rhs": 1})
            assert answer["ok"] is True, answer
            a = answer["answer"]
            assert a["hits"] <= min(a["lhs_ones"], a["rhs_ones"]), a

            listing = request(
                sock, {"type": "rules_ge", "threshold": 0.9, "limit": 5})
            assert listing["ok"] is True, listing
            assert len(listing["rules"]) <= 5, listing
            assert listing["total"] >= len(listing["rules"]), listing
            for rule in listing["rules"]:
                assert rule["confidence"] >= 0.9 - 1e-9, rule

            # A garbage frame draws an error response and must not
            # poison the connection.
            send_frame(sock, b"this is not json")
            err = recv_frame(sock)
            assert err["ok"] is False and err["error"], err

            ingest = request(
                sock, {"type": "ingest", "rows": [[0, 1], [0, 1], [2]]})
            assert ingest["ok"] is True, ingest
            assert ingest["report"]["rows"] == 3, ingest

            stats2 = request(sock, {"type": "stats"})
            assert stats2["ok"] is True, stats2
            s2 = stats2["stats"]
            assert s2["rows"] == rows_before + 3, (s, s2)
            assert s2["errors"] >= 1, s2
            assert s2["requests"] > s2["errors"], s2

            # 7th frame on this connection; the daemon records the
            # metrics request itself before snapshotting, so the
            # per-request-type histogram counts must sum to exactly 7.
            snapshot = request(sock, {"type": "metrics"})
            assert snapshot["ok"] is True, snapshot
            hists = snapshot["metrics"]["histograms"]
            by_type = {name: h["count"] for name, h in hists.items()
                       if name.startswith("serve.request.")}
            assert sum(by_type.values()) == 7, by_type
            assert by_type.get("serve.request.stats") == 2, by_type
            assert by_type.get("serve.request.rule") == 1, by_type
            assert by_type.get("serve.request.error") == 1, by_type
            assert by_type.get("serve.request.metrics") == 1, by_type
            for h in hists.values():
                assert h["p50_us"] <= h["p90_us"] <= h["p99_us"] \
                    <= h["max_us"], hists

            # One Prometheus scrape; no daemon frame is involved, so
            # the exposition must agree with the in-band snapshot.
            body = scrape_exposition(telemetry_addr)
            scraped = prometheus_counts(body, "serve_request_")
            assert sum(scraped.values()) == 7, scraped
            assert scraped.get("serve_request_rule_count") == 1, scraped
            assert "serve_in_flight" in body, body

            bye = request(sock, {"type": "shutdown"})
            assert bye["ok"] is True, bye

        code = proc.wait(timeout=60)
        assert code == 0, f"daemon exited {code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stdout.close()

    if metrics:
        assert os.path.exists(metrics), f"missing report {metrics}"
        with open(metrics) as f:
            report = json.load(f)
        serve = report["serve"]
        assert serve is not None and serve["connections"] >= 1, serve
        assert serve["errors"] >= 1, serve
        assert serve["errors"] <= serve["requests"], serve
        ingested = report["ingest"]
        assert ingested is not None and ingested["rows_ingested"] == 3, \
            ingested
        telemetry = report["telemetry"]
        assert telemetry is not None, "report missing telemetry section"
        final = sum(h["count"] for h in telemetry["histograms"]
                    if h["name"].startswith("serve.request."))
        assert final == serve["requests"], (final, serve)

    print("serve smoke: ok")


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    try:
        check(argv[1], argv[2], argv[3] if len(argv) == 4 else None)
    except AssertionError as e:
        print(f"serve smoke: FAILED: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
