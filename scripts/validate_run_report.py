#!/usr/bin/env python3
"""Validate a `dmc.run_report.v8` JSON run report.

Usage: validate_run_report.py PATH ALGORITHM MODE WORKERS

    PATH       report file written by `dmc ... --metrics PATH`
    ALGORITHM  expected `algorithm` field (implication | similarity)
    MODE       expected `mode` field (in-memory | streamed | sharded)
    WORKERS    expected number of worker summaries (0 for sequential)

Checks the schema name, the required keys, and the counter
reconciliation identities the observability layer guarantees:
admitted = deleted + emitted (per stage and for the run), stage
counters sum to the run counters, worker admissions sum to the run,
kept rules across stages equal the emitted rule count, and the
driver-measured `wall_seconds` covers at least the named phases. The
v5 `serve` / `ingest` sections must be null or well-formed objects:
a server cannot err on more requests than it received, and an
ingesting engine cannot bear more rules than it recounted pairs. The
v6 `shard` section (required non-null for `sharded` mode, null
otherwise) must carry dense shard indices, column ranges tiling
`[0, cols)` exactly, per-shard counters that reconcile and sum to the
run counters, rule counts summing to the merged total, and a counter
fingerprint per shard. The v7 `compaction` section (null unless the
run compacted its rules) must keep `rules_in_base <= rules_in`, a
six-bucket boost histogram summing to `rules_in_base`, and a `ratio`
equal to `rules_in_base / rules_in` (1.0 for an empty rule set). The
v8 `telemetry` section (null unless live telemetry was captured) must
keep every histogram's quantiles monotone (p50 <= p90 <= p99 <= max),
an empty histogram's max at zero, and — when the `serve` section is
present too — the `serve.request.*` histogram counts summing exactly
to the serve section's `requests` counter (every received frame lands
in exactly one per-request-type histogram).

Exits 0 on a valid report, 1 with a diagnostic otherwise. CI runs this
against freshly mined reports; `tests/tests/validator_script.rs` runs
it in the repo test suite so the script cannot drift from the schema.
"""

import json
import sys

SCHEMA = "dmc.run_report.v8"

REQUIRED_KEYS = (
    "schema", "algorithm", "mode", "threads", "rows", "cols", "threshold",
    "rules", "counters", "hundred_stage", "sub_stage", "reverse_rules",
    "phases", "wall_seconds", "peak_candidates", "peak_counter_bytes",
    "bitmap_switch_at", "spill_bytes", "io", "workers", "serve", "ingest",
    "shard", "compaction", "telemetry",
)

SERVE_KEYS = ("connections", "requests", "errors")

SHARD_ENTRY_KEYS = ("index", "col_lo", "col_hi", "rules", "fingerprint",
                    "counters")

INGEST_KEYS = ("batches", "rows_ingested", "pairs_bumped",
               "pairs_recounted", "rules_born", "rules_died")

COMPACTION_KEYS = ("rules_in", "rules_in_base", "ratio", "boost_hist")

TELEMETRY_HIST_KEYS = ("name", "count", "p50_us", "p90_us", "p99_us",
                       "max_us")


def check(path, algorithm, mode, workers):
    with open(path) as f:
        r = json.load(f)
    assert r["schema"] == SCHEMA, (r["schema"], SCHEMA)
    assert r["algorithm"] == algorithm, (r["algorithm"], algorithm)
    assert r["mode"] == mode, (r["mode"], mode)
    for key in REQUIRED_KEYS:
        assert key in r, f"{path}: missing {key}"

    if mode == "streamed":
        io = r["io"]
        assert io is not None, f"{path}: streamed run missing io"
        assert io["frames_written"] == r["rows"], (path, io)
        assert io["frames_read"] == \
            io["frames_written"] * io["replays"], (path, io)
        assert io["corrupt_frames"] == 0, (path, io)
    else:
        assert r["io"] is None, (path, r["io"])

    c = r["counters"]
    assert c["candidates_admitted"] == \
        c["candidates_deleted"] + c["rules_emitted"], (path, c)
    stage_sum = {k: 0 for k in c}
    kept = r["reverse_rules"]
    for stage in (r["hundred_stage"], r["sub_stage"]):
        if stage is None:
            continue
        sc = stage["counters"]
        assert sc["candidates_admitted"] == \
            sc["candidates_deleted"] + sc["rules_emitted"], (path, sc)
        for k in stage_sum:
            stage_sum[k] += sc[k]
        kept += stage["rules_kept"]
    assert stage_sum == c, (path, stage_sum, c)
    assert kept == r["rules"], (path, kept, r["rules"])

    assert len(r["workers"]) == workers, (path, r["workers"])
    if workers:
        admitted = sum(w["counters"]["candidates_admitted"]
                       for w in r["workers"])
        assert admitted == c["candidates_admitted"], path
        for w in r["workers"]:
            assert 0 <= w["blocks_stolen"] <= w["blocks_processed"], \
                (path, w)

    serve = r["serve"]
    if serve is not None:
        for key in SERVE_KEYS:
            assert key in serve, f"{path}: serve missing {key}"
            assert isinstance(serve[key], int) and serve[key] >= 0, \
                (path, key, serve)
        assert serve["errors"] <= serve["requests"], (path, serve)

    ingest = r["ingest"]
    if ingest is not None:
        for key in INGEST_KEYS:
            assert key in ingest, f"{path}: ingest missing {key}"
            assert isinstance(ingest[key], int) and ingest[key] >= 0, \
                (path, key, ingest)
        assert ingest["rules_born"] <= ingest["pairs_recounted"], \
            (path, ingest)
        assert not (ingest["batches"] == 0 and ingest["rows_ingested"] > 0), \
            (path, ingest)

    shard = r["shard"]
    if mode == "sharded":
        assert shard is not None, f"{path}: sharded run missing shard"
    if shard is not None:
        entries = shard["shards"]
        assert shard["n_shards"] == len(entries) > 0, (path, shard)
        shard_sum = {k: 0 for k in c}
        shard_rules = 0
        ranges = []
        for i, entry in enumerate(entries):
            for key in SHARD_ENTRY_KEYS:
                assert key in entry, f"{path}: shard entry missing {key}"
            assert entry["index"] == i, (path, entry)
            assert 0 <= entry["fingerprint"] <= 0xFFFFFFFF, (path, entry)
            ec = entry["counters"]
            assert ec["candidates_admitted"] == \
                ec["candidates_deleted"] + ec["rules_emitted"], (path, ec)
            for k in shard_sum:
                shard_sum[k] += ec[k]
            shard_rules += entry["rules"]
            ranges.append((entry["col_lo"], entry["col_hi"]))
        ranges.sort()
        assert ranges[0][0] == 0, (path, ranges)
        assert ranges[-1][1] == r["cols"], (path, ranges)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo, (path, ranges)
        assert shard_sum == c, (path, shard_sum, c)
        assert shard_rules == r["rules"], (path, shard_rules, r["rules"])

    compaction = r["compaction"]
    if compaction is not None:
        for key in COMPACTION_KEYS:
            assert key in compaction, f"{path}: compaction missing {key}"
        rules_in = compaction["rules_in"]
        in_base = compaction["rules_in_base"]
        assert isinstance(rules_in, int) and rules_in >= 0, (path, compaction)
        assert isinstance(in_base, int) and 0 <= in_base <= rules_in, \
            (path, compaction)
        hist = compaction["boost_hist"]
        assert len(hist) == 6, (path, hist)
        assert all(isinstance(b, int) and b >= 0 for b in hist), (path, hist)
        assert sum(hist) == in_base, (path, hist, in_base)
        expected = 1.0 if rules_in == 0 else in_base / rules_in
        assert abs(compaction["ratio"] - expected) <= 1e-9, \
            (path, compaction["ratio"], expected)

    telemetry = r["telemetry"]
    if telemetry is not None:
        assert isinstance(telemetry["counters"], dict), (path, telemetry)
        assert isinstance(telemetry["events_dropped"], int), (path, telemetry)
        serve_request_count = 0
        for h in telemetry["histograms"]:
            for key in TELEMETRY_HIST_KEYS:
                assert key in h, f"{path}: telemetry histogram missing {key}"
            assert h["p50_us"] <= h["p90_us"] <= h["p99_us"] <= h["max_us"], \
                (path, h)
            assert not (h["count"] == 0 and h["max_us"] != 0), (path, h)
            if h["name"].startswith("serve.request."):
                serve_request_count += h["count"]
        if serve is not None:
            assert serve_request_count == serve["requests"], \
                (path, serve_request_count, serve)

    if r["bitmap_switch_at"] is not None:
        assert 0 <= r["bitmap_switch_at"] <= r["rows"], path

    wall = r["wall_seconds"]
    assert isinstance(wall, (int, float)), (path, wall)
    phase_sum = sum(p["seconds"] for p in r["phases"])
    assert wall + 1e-6 >= phase_sum, (path, wall, phase_sum)

    print(f"{path}: ok ({r['rules']} rules, "
          f"{c['candidates_admitted']} admitted, {wall:.4f}s)")


def main(argv):
    if len(argv) != 5:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    path, algorithm, mode, workers = argv[1:]
    try:
        check(path, algorithm, mode, int(workers))
    except AssertionError as e:
        print(f"{path}: INVALID: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
