//! Shared helpers for the cross-crate integration tests.

use dmc_matrix::{ColumnId, SparseMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random 0/1 matrix with independent entries.
#[must_use]
pub fn random_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<ColumnId>> = (0..rows)
        .map(|_| {
            (0..cols as ColumnId)
                .filter(|_| rng.gen::<f64>() < density)
                .collect()
        })
        .collect();
    SparseMatrix::from_rows(cols, data)
}

/// Proptest strategy: a small sparse matrix (up to `max_rows` × `max_cols`)
/// with row sets drawn directly, so empty rows, empty columns, duplicate
/// rows and identical columns all occur naturally.
pub fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = SparseMatrix> {
    (1..=max_cols).prop_flat_map(move |cols| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..cols as ColumnId, 0..=cols.min(12)),
            0..=max_rows,
        )
        .prop_map(move |rows| {
            SparseMatrix::from_rows(
                cols,
                rows.into_iter()
                    .map(|set| set.into_iter().collect())
                    .collect(),
            )
        })
    })
}

/// Thresholds that exercise boundaries: 1.0, just-below-1, common paper
/// values, and low ones.
pub fn threshold_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1.0),
        Just(0.99),
        Just(0.9),
        Just(0.85),
        Just(0.75),
        Just(0.5),
        Just(0.34),
        0.05f64..1.0,
    ]
}
