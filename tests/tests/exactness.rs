//! The central correctness property: every DMC configuration produces
//! exactly the oracle's rule set — no false positives, no false negatives,
//! for implication and similarity alike.

use dmc_baselines::oracle;
use dmc_core::{
    find_implications, find_implications_parallel, find_similarities, ImplicationConfig, RowOrder,
    SimilarityConfig, SwitchPolicy,
};
use dmc_integration_tests::{matrix_strategy, random_matrix, threshold_strategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn imp_matches_oracle(m in matrix_strategy(24, 14), minconf in threshold_strategy()) {
        let out = find_implications(&m, &ImplicationConfig::new(minconf));
        let exact = oracle::exact_implications(&m, minconf, false);
        prop_assert_eq!(out.rules, exact);
    }

    #[test]
    fn imp_matches_oracle_with_reverse(
        m in matrix_strategy(20, 10),
        minconf in threshold_strategy(),
    ) {
        let out = find_implications(&m, &ImplicationConfig::new(minconf).with_reverse(true));
        let exact = oracle::exact_implications(&m, minconf, true);
        prop_assert_eq!(out.rules, exact);
    }

    #[test]
    fn sim_matches_oracle(m in matrix_strategy(24, 14), minsim in threshold_strategy()) {
        let out = find_similarities(&m, &SimilarityConfig::new(minsim));
        let exact = oracle::exact_similarities(&m, minsim);
        prop_assert_eq!(out.rules, exact);
    }

    #[test]
    fn imp_invariant_under_row_order(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
    ) {
        let base = find_implications(&m, &ImplicationConfig::new(minconf));
        for order in [RowOrder::Original, RowOrder::ExactSparsestFirst] {
            let out = find_implications(
                &m,
                &ImplicationConfig::new(minconf).with_row_order(order),
            );
            prop_assert_eq!(&out.rules, &base.rules);
        }
    }

    #[test]
    fn imp_invariant_under_forced_switch(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
        tail in 1usize..24,
    ) {
        let base = find_implications(&m, &ImplicationConfig::new(minconf));
        let forced = find_implications(
            &m,
            &ImplicationConfig::new(minconf).with_switch(SwitchPolicy::always_at(tail)),
        );
        prop_assert_eq!(forced.rules, base.rules);
    }

    #[test]
    fn sim_invariant_under_forced_switch(
        m in matrix_strategy(20, 12),
        minsim in threshold_strategy(),
        tail in 1usize..24,
    ) {
        let base = find_similarities(&m, &SimilarityConfig::new(minsim));
        let forced = find_similarities(
            &m,
            &SimilarityConfig::new(minsim).with_switch(SwitchPolicy::always_at(tail)),
        );
        prop_assert_eq!(forced.rules, base.rules);
    }

    #[test]
    fn imp_invariant_under_stage_and_release_toggles(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
    ) {
        let base = find_implications(&m, &ImplicationConfig::new(minconf));
        let mut cfg = ImplicationConfig::new(minconf).with_hundred_stage(false);
        cfg.release_completed = false;
        let toggled = find_implications(&m, &cfg);
        prop_assert_eq!(toggled.rules, base.rules);
    }

    #[test]
    fn sim_invariant_under_pruning_toggles(
        m in matrix_strategy(20, 12),
        minsim in threshold_strategy(),
    ) {
        let base = find_similarities(&m, &SimilarityConfig::new(minsim));
        let toggled = find_similarities(
            &m,
            &SimilarityConfig::new(minsim)
                .with_max_hits_pruning(false)
                .with_hundred_stage(false),
        );
        prop_assert_eq!(toggled.rules, base.rules);
    }

    #[test]
    fn parallel_matches_sequential(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
        threads in 1usize..5,
    ) {
        let seq = find_implications(&m, &ImplicationConfig::new(minconf));
        let par = find_implications_parallel(&m, &ImplicationConfig::new(minconf), threads);
        prop_assert_eq!(par.rules, seq.rules);
    }

    #[test]
    fn rule_counts_are_internally_consistent(
        m in matrix_strategy(24, 14),
        minconf in threshold_strategy(),
    ) {
        let ones = m.column_ones();
        for rule in &find_implications(&m, &ImplicationConfig::new(minconf)).rules {
            prop_assert_eq!(rule.lhs_ones, ones[rule.lhs as usize]);
            prop_assert_eq!(rule.rhs_ones, ones[rule.rhs as usize]);
            prop_assert!(rule.hits <= rule.lhs_ones.min(rule.rhs_ones));
            prop_assert!(rule.confidence() >= minconf - 1e-6);
            // Canonical direction only.
            prop_assert!(
                rule.lhs_ones < rule.rhs_ones
                    || (rule.lhs_ones == rule.rhs_ones && rule.lhs < rule.rhs)
            );
        }
    }
}

/// Larger deterministic cross-checks at a few densities and thresholds
/// (bigger than the proptest sizes, run once each).
#[test]
fn medium_random_matrices_match_oracle() {
    for (density, seed) in [(0.05, 1u64), (0.15, 2), (0.35, 3)] {
        let m = random_matrix(300, 60, density, seed);
        for &thr in &[1.0, 0.9, 0.75, 0.5] {
            let imp = find_implications(&m, &ImplicationConfig::new(thr));
            assert_eq!(
                imp.rules,
                oracle::exact_implications(&m, thr, false),
                "imp density={density} thr={thr}"
            );
            let sim = find_similarities(&m, &SimilarityConfig::new(thr));
            assert_eq!(
                sim.rules,
                oracle::exact_similarities(&m, thr),
                "sim density={density} thr={thr}"
            );
        }
    }
}

/// The paper-style pipeline on a skewed matrix: crawlers + near-duplicate
/// columns + empty rows, forced through the bitmap switch.
#[test]
fn skewed_matrix_with_forced_switch_matches_oracle() {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    // Ordinary sparse rows.
    for i in 0..120u32 {
        rows.push(vec![i % 7, 7 + (i % 5)]);
    }
    // Duplicate column pair (20, 21) and near-duplicate (22, 23).
    for i in 0..40u32 {
        rows.push(vec![20, 21, i % 3]);
        if i % 2 == 0 {
            rows.push(vec![22, 23]);
        } else {
            rows.push(vec![22]);
        }
    }
    rows.push(vec![]);
    // Two crawler rows covering everything.
    rows.push((0..24).collect());
    rows.push((0..24).collect());
    let m = dmc_core::SparseMatrix::from_rows(24, rows);

    for &thr in &[1.0, 0.9, 0.8, 0.6] {
        let cfg = ImplicationConfig::new(thr).with_switch(SwitchPolicy::always_at(8));
        assert_eq!(
            find_implications(&m, &cfg).rules,
            oracle::exact_implications(&m, thr, false),
            "imp thr={thr}"
        );
        let scfg = SimilarityConfig::new(thr).with_switch(SwitchPolicy::always_at(8));
        assert_eq!(
            find_similarities(&m, &scfg).rules,
            oracle::exact_similarities(&m, thr),
            "sim thr={thr}"
        );
    }
}

mod streamed {
    use super::*;
    use dmc_core::{find_implications_streamed, find_similarities_streamed};
    use std::convert::Infallible;

    fn rows_of(m: &dmc_core::SparseMatrix) -> Vec<Result<Vec<u32>, Infallible>> {
        m.rows().map(|r| Ok(r.to_vec())).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn streamed_imp_matches_oracle(
            m in matrix_strategy(20, 12),
            minconf in threshold_strategy(),
        ) {
            let streamed = find_implications_streamed(
                rows_of(&m),
                m.n_cols(),
                &ImplicationConfig::new(minconf),
            )
            .unwrap();
            prop_assert_eq!(
                streamed.rules,
                oracle::exact_implications(&m, minconf, false)
            );
        }

        #[test]
        fn streamed_sim_matches_oracle(
            m in matrix_strategy(20, 12),
            minsim in threshold_strategy(),
        ) {
            let streamed = find_similarities_streamed(
                rows_of(&m),
                m.n_cols(),
                &SimilarityConfig::new(minsim),
            )
            .unwrap();
            prop_assert_eq!(streamed.rules, oracle::exact_similarities(&m, minsim));
        }

        #[test]
        fn streamed_with_forced_switch_matches_oracle(
            m in matrix_strategy(20, 12),
            minconf in threshold_strategy(),
            tail in 1usize..24,
        ) {
            let cfg = ImplicationConfig::new(minconf)
                .with_switch(SwitchPolicy::always_at(tail));
            let streamed =
                find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            prop_assert_eq!(
                streamed.rules,
                oracle::exact_implications(&m, minconf, false)
            );
        }
    }
}
