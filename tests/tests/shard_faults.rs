//! Fault injection against the shard spill / merge protocol: every
//! corruption a crashed or lying worker can leave behind must surface as
//! a *typed* [`ShardError`] from the merge — never a partial union — and
//! a failed merge must leave no manifest on disk. Transient io faults
//! must instead retry through to output byte-identical to a fault-free
//! run (the seeded sweep at the bottom).

use dmc_core::shard::{
    merge_shards, mine_shard, plan_shards, run_worker, shard_path, write_shard, ShardError,
    HEADER_BYTES,
};
use dmc_core::{shard_mine, MineConfig, SparseMatrix};
use dmc_datagen::{planted_implications, PlantedConfig};
use dmc_matrix::framed::FRAME_HEADER_BYTES;
use dmc_matrix::spill_io::{crc32, FaultPlan, FaultyIo, RetryPolicy, StdFsIo};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dmc-shard-faults-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn matrix() -> SparseMatrix {
    planted_implications(&PlantedConfig::new(300, 30, 5, 17)).matrix
}

fn config() -> MineConfig {
    MineConfig::implications(0.8).unwrap()
}

/// Writes a full set of healthy shard spills and returns the plan.
fn healthy_shards(manifest: &Path, n_shards: usize) -> Vec<(u32, u32)> {
    let m = matrix();
    let cfg = config();
    let plan = plan_shards(m.n_cols(), n_shards).unwrap();
    for index in 0..plan.len() {
        run_worker(
            &StdFsIo,
            manifest,
            RetryPolicy::none(),
            &cfg,
            &m,
            &plan,
            index,
        )
        .unwrap();
    }
    plan
}

fn merge(manifest: &Path, n_shards: usize) -> Result<(), ShardError> {
    merge_shards(&StdFsIo, manifest, n_shards, RetryPolicy::none(), false).map(|_| ())
}

/// Asserts the merge failed cleanly: no manifest written, every shard
/// spill left in place for inspection and retry.
fn assert_no_partial_output(manifest: &Path, n_shards: usize) {
    assert!(!manifest.exists(), "failed merge must not leave a manifest");
    for i in 0..n_shards {
        assert!(
            shard_path(manifest, i).exists(),
            "failed merge must not consume shard spill {i}"
        );
    }
}

/// Rewrites the CRC of the frame starting at `frame_off` so a deliberate
/// payload tamper passes the frame checksum and must be caught by the
/// next integrity layer (fingerprint, rule count, range check).
fn fix_frame_crc(bytes: &mut [u8], frame_off: usize) {
    let len = u32::from_le_bytes(bytes[frame_off..frame_off + 4].try_into().unwrap()) as usize;
    let payload_off = frame_off + FRAME_HEADER_BYTES;
    let crc = crc32(&bytes[payload_off..payload_off + len]);
    bytes[frame_off + 8..frame_off + 12].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn truncated_shard_spill_is_corrupt() {
    let dir = TempDir::new("truncated");
    let manifest = dir.path("m");
    let plan = healthy_shards(&manifest, 3);
    let victim = shard_path(&manifest, 1);
    let len = std::fs::metadata(&victim).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);
    match merge(&manifest, plan.len()) {
        Err(ShardError::Corrupt { shard: 1, .. }) => {}
        other => panic!("expected Corrupt on shard 1, got {other:?}"),
    }
    assert_no_partial_output(&manifest, plan.len());
}

#[test]
fn flipped_fingerprint_byte_is_typed() {
    let dir = TempDir::new("fingerprint");
    let manifest = dir.path("m");
    let plan = healthy_shards(&manifest, 3);
    let victim = shard_path(&manifest, 2);
    let mut bytes = std::fs::read(&victim).unwrap();
    // The fingerprint is the last 4 bytes of the header payload; repair
    // the frame CRC so only the fingerprint layer can catch the flip.
    bytes[FRAME_HEADER_BYTES + HEADER_BYTES - 4] ^= 0x40;
    fix_frame_crc(&mut bytes, 0);
    std::fs::write(&victim, &bytes).unwrap();
    match merge(&manifest, plan.len()) {
        Err(ShardError::FingerprintMismatch {
            shard: 2,
            expected,
            actual,
        }) => assert_ne!(expected, actual),
        other => panic!("expected FingerprintMismatch on shard 2, got {other:?}"),
    }
    assert_no_partial_output(&manifest, plan.len());
}

#[test]
fn tampered_rule_payload_is_fingerprint_mismatch() {
    let dir = TempDir::new("rule-tamper");
    let manifest = dir.path("m");
    let plan = healthy_shards(&manifest, 2);
    // Pick a shard that actually emitted rules (its file extends past the
    // header frame into at least one rule frame).
    let rule_frame_off = FRAME_HEADER_BYTES + HEADER_BYTES;
    let victim = (0..plan.len())
        .map(|i| shard_path(&manifest, i))
        .find(|p| std::fs::metadata(p).unwrap().len() > rule_frame_off as u64)
        .expect("at least one shard holds rules");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[rule_frame_off + FRAME_HEADER_BYTES + 8] ^= 0x01; // a rule's hit count
    fix_frame_crc(&mut bytes, rule_frame_off);
    std::fs::write(&victim, &bytes).unwrap();
    match merge(&manifest, plan.len()) {
        Err(ShardError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    assert_no_partial_output(&manifest, plan.len());
}

#[test]
fn tampered_rule_count_is_typed() {
    let dir = TempDir::new("rule-count");
    let manifest = dir.path("m");
    let plan = healthy_shards(&manifest, 2);
    let victim = shard_path(&manifest, 0);
    let mut bytes = std::fs::read(&victim).unwrap();
    // rule_count is the u64 at header offset 52 (after the magic, the
    // four config bytes, four u32s, and three u64s).
    bytes[FRAME_HEADER_BYTES + 52] ^= 0x02;
    fix_frame_crc(&mut bytes, 0);
    std::fs::write(&victim, &bytes).unwrap();
    match merge(&manifest, plan.len()) {
        Err(ShardError::RuleCountMismatch { shard: 0, .. }) => {}
        other => panic!("expected RuleCountMismatch on shard 0, got {other:?}"),
    }
    assert_no_partial_output(&manifest, plan.len());
}

#[test]
fn missing_shard_file_is_typed() {
    let dir = TempDir::new("missing");
    let manifest = dir.path("m");
    let plan = healthy_shards(&manifest, 3);
    std::fs::remove_file(shard_path(&manifest, 2)).unwrap();
    match merge(&manifest, plan.len()) {
        Err(ShardError::MissingShard { index: 2, .. }) => {}
        other => panic!("expected MissingShard 2, got {other:?}"),
    }
    assert!(!manifest.exists());
}

/// Duplicate, overlapping and gapped column ranges (a mis-launched worker
/// pair) are all rejected by the range-tiling check. `run_worker` refuses
/// such plans up front, so the spills are forged through `write_shard`.
#[test]
fn bad_column_ranges_are_typed() {
    let m = matrix();
    let cfg = config();
    let n = m.n_cols() as u32;
    let bad_plans: &[&[(u32, u32)]] = &[
        &[(0, n), (0, n)],             // duplicate range
        &[(0, n / 2 + 3), (n / 2, n)], // overlap
        &[(0, n / 2 - 3), (n / 2, n)], // gap
    ];
    for (case, plan) in bad_plans.iter().enumerate() {
        let dir = TempDir::new(&format!("ranges-{case}"));
        let manifest = dir.path("m");
        for (index, &(lo, hi)) in plan.iter().enumerate() {
            let out = mine_shard(&cfg, &m, lo, hi);
            write_shard(
                &StdFsIo,
                &shard_path(&manifest, index),
                RetryPolicy::none(),
                &out,
                false,
                plan,
                index,
            )
            .unwrap();
        }
        match merge(&manifest, plan.len()) {
            Err(ShardError::BadRanges { .. }) => {}
            other => panic!("case {case}: expected BadRanges, got {other:?}"),
        }
        assert_no_partial_output(&manifest, plan.len());
    }
}

#[test]
fn merging_the_wrong_shard_count_is_typed() {
    let dir = TempDir::new("count");
    let manifest = dir.path("m");
    healthy_shards(&manifest, 3);
    match merge(&manifest, 2) {
        Err(ShardError::HeaderMismatch { shard: 0, .. }) => {}
        other => panic!("expected HeaderMismatch, got {other:?}"),
    }
    assert!(!manifest.exists());
}

/// The seeded fault sweep of `framed.rs`, lifted to the whole sharded
/// pipeline: under any single injected io fault, `shard_mine` either
/// produces rules byte-identical to a fault-free run (transient faults
/// retried away, or silent corruption confined to the post-union
/// manifest) or fails with a typed error — and a transient-only plan
/// must always recover.
#[test]
fn seeded_faults_retry_or_surface() {
    let dir = TempDir::new("sweep");
    let m = matrix();
    let cfg = config();
    let baseline = shard_mine(
        &StdFsIo,
        &dir.path("baseline.manifest"),
        RetryPolicy::none(),
        &cfg,
        &m,
        4,
        false,
    )
    .unwrap();
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed);
        let io = FaultyIo::over(Arc::new(StdFsIo), plan.clone());
        let retry = RetryPolicy {
            seed,
            ..RetryPolicy::standard()
        };
        let manifest = dir.path(&format!("seed{seed}.manifest"));
        match shard_mine(&io, &manifest, retry, &cfg, &m, 4, false) {
            Ok(merged) => {
                assert_eq!(merged.imp_rules, baseline.imp_rules, "seed={seed}");
                assert!(merged.report.reconciles(), "seed={seed}");
            }
            Err(e) => {
                assert!(
                    !plan.all_transient(),
                    "transient-only plan must recover (seed={seed}, error: {e})"
                );
            }
        }
    }
}
