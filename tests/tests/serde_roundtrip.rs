//! Serde round-trips for the feature-gated serializable types.
//!
//! `serde_json` is a dev-dependency used only here, to prove the `serde`
//! features produce faithful encodings (see DESIGN.md's dependency note).
//!
//! Gated off by default: the offline build environment vendors a placeholder
//! `serde` (see `vendor/serde`) and has no `serde_json` at all. To run these
//! tests, restore network access, point `serde` in the workspace manifest
//! back at crates.io, re-add `serde_json` plus the dmc-* `serde` features to
//! `tests/Cargo.toml`, and enable the `serde-roundtrip` feature.
#![cfg(feature = "serde-roundtrip")]

use dmc_bitset::BitSet;
use dmc_core::{
    find_implications, ImplicationConfig, ImplicationRule, SimilarityRule, SwitchPolicy,
};
use dmc_integration_tests::random_matrix;
use dmc_matrix::SparseMatrix;

#[test]
fn matrix_roundtrips_through_json() {
    let m = random_matrix(40, 20, 0.2, 11);
    let json = serde_json::to_string(&m).unwrap();
    let back: SparseMatrix = serde_json::from_str(&json).unwrap();
    assert_eq!(back, m);
    // And the mined rules agree, of course.
    assert_eq!(
        find_implications(&m, &ImplicationConfig::new(0.8)).rules,
        find_implications(&back, &ImplicationConfig::new(0.8)).rules
    );
}

#[test]
fn rules_roundtrip_through_json() {
    let imp = ImplicationRule {
        lhs: 3,
        rhs: 9,
        hits: 17,
        lhs_ones: 20,
        rhs_ones: 31,
    };
    let json = serde_json::to_string(&imp).unwrap();
    let back: ImplicationRule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, imp);

    let sim = SimilarityRule {
        a: 1,
        b: 2,
        hits: 4,
        a_ones: 5,
        b_ones: 6,
    };
    let back: SimilarityRule = serde_json::from_str(&serde_json::to_string(&sim).unwrap()).unwrap();
    assert_eq!(back, sim);
}

#[test]
fn mined_rule_vectors_roundtrip() {
    let m = random_matrix(60, 15, 0.25, 5);
    let rules = find_implications(&m, &ImplicationConfig::new(0.7)).rules;
    let json = serde_json::to_string(&rules).unwrap();
    let back: Vec<ImplicationRule> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, rules);
}

#[test]
fn bitset_roundtrips_through_json() {
    let set = BitSet::from_indices(130, [0, 63, 64, 129]);
    let json = serde_json::to_string(&set).unwrap();
    let back: BitSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back, set);
    assert_eq!(back.ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
}

#[test]
fn configs_roundtrip_through_json() {
    let cfg = ImplicationConfig::new(0.85).with_switch(SwitchPolicy::always_at(32));
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ImplicationConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.minconf, cfg.minconf);
    assert_eq!(back.switch, cfg.switch);
    assert_eq!(back.row_order, cfg.row_order);
}
