//! Boundary behavior of the shared threshold predicates and the drivers
//! built on them: `minconf = 1.0` (zero miss budget) and single-one
//! columns, where off-by-ones are easiest to introduce.

use dmc_core::threshold::{
    conf_qualifies, max_misses_conf, max_misses_sim, min_hits_conf, min_hits_sim, sim_qualifies,
};
use dmc_core::{
    find_implications, find_implications_parallel, find_similarities, find_similarities_parallel,
    ImplicationConfig, SimilarityConfig,
};
use dmc_matrix::SparseMatrix;

#[test]
fn min_hits_conf_at_full_confidence_requires_every_row() {
    for ones in [1u64, 2, 3, 10, 100, 1_000_000] {
        assert_eq!(min_hits_conf(ones, 1.0), ones, "ones={ones}");
        assert_eq!(max_misses_conf(ones, 1.0), 0, "ones={ones}");
        assert!(conf_qualifies(ones, ones, 1.0));
        assert!(!conf_qualifies(ones - 1, ones, 1.0), "ones={ones}");
    }
    // Degenerate column: no 1s, nothing to hit.
    assert_eq!(min_hits_conf(0, 1.0), 0);
}

#[test]
fn min_hits_conf_single_one_column_is_all_or_nothing() {
    // A column with a single 1 either hits its partner in that row
    // (confidence 1) or misses (confidence 0): every positive minconf
    // needs the one hit.
    for minconf in [0.05, 0.34, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(min_hits_conf(1, minconf), 1, "minconf={minconf}");
        assert_eq!(max_misses_conf(1, minconf), 0, "minconf={minconf}");
    }
}

#[test]
fn min_hits_sim_at_full_similarity_requires_identical_columns() {
    for ones in [1u64, 2, 5, 100] {
        assert_eq!(min_hits_sim(ones, ones, 1.0), Some(ones), "ones={ones}");
        assert_eq!(max_misses_sim(ones, ones, 1.0), Some(0));
        // Different sizes can never be identical: pruned outright.
        assert_eq!(min_hits_sim(ones, ones + 1, 1.0), None, "ones={ones}");
    }
    assert!(sim_qualifies(3, 3, 3, 1.0));
    assert!(!sim_qualifies(2, 3, 3, 1.0));
}

#[test]
fn min_hits_sim_single_one_columns() {
    // Two single-one columns: Jaccard is 1 when they share the row,
    // 0 otherwise — any positive threshold needs the shared row.
    for minsim in [0.05, 0.5, 0.99, 1.0] {
        assert_eq!(min_hits_sim(1, 1, minsim), Some(1), "minsim={minsim}");
    }
    // A single-one column against a large one: best case 1/(big), so the
    // pair is density-pruned once minsim exceeds that.
    assert_eq!(min_hits_sim(1, 10, 0.5), None);
    assert_eq!(min_hits_sim(1, 10, 0.1), Some(1));
}

/// Drivers at minconf = 1.0 on data with single-one columns: column 2
/// has one 1 co-occurring with column 0; column 3 has one 1 alone.
#[test]
fn drivers_handle_single_one_columns_at_full_thresholds() {
    let m = SparseMatrix::from_rows(
        4,
        vec![vec![0, 1, 2], vec![0, 1], vec![0, 1], vec![3], vec![0, 1]],
    );
    let out = find_implications(&m, &ImplicationConfig::new(1.0));
    let text: Vec<String> = out.rules.iter().map(ToString::to_string).collect();
    // Each qualifying pair appears once, sparser column as LHS (the
    // reverse direction is opt-in via `with_reverse`).
    assert_eq!(
        text,
        vec![
            "c0 => c1 (conf 4/4 = 1.000)",
            "c2 => c0 (conf 1/1 = 1.000)",
            "c2 => c1 (conf 1/1 = 1.000)",
        ]
    );
    for threads in [1, 2, 4] {
        let par = find_implications_parallel(&m, &ImplicationConfig::new(1.0), threads);
        assert_eq!(par.rules, out.rules, "threads={threads}");
    }

    let sim = find_similarities(&m, &SimilarityConfig::new(1.0));
    let sim_text: Vec<String> = sim.rules.iter().map(ToString::to_string).collect();
    assert_eq!(sim_text, vec!["c0 ~ c1 (sim 4/4 = 1.000)"]);
    for threads in [1, 2, 4] {
        let par = find_similarities_parallel(&m, &SimilarityConfig::new(1.0), threads);
        assert_eq!(par.rules, sim.rules, "threads={threads}");
    }
}
