//! The parallel out-of-core drivers are bit-identical to the
//! sequential in-memory and streamed drivers: same rules, same order,
//! for every thread count, reverse mode and switch policy.

use dmc_core::{
    find_implications, find_implications_streamed, find_implications_streamed_parallel,
    find_similarities, find_similarities_streamed, find_similarities_streamed_parallel,
    ImplicationConfig, SimilarityConfig, SwitchPolicy,
};
use dmc_datagen::{planted_implications, PlantedConfig};
use dmc_integration_tests::matrix_strategy;
use dmc_matrix::{ColumnId, SparseMatrix};
use proptest::prelude::*;
use std::convert::Infallible;

fn rows_of(m: &SparseMatrix) -> impl Iterator<Item = Result<Vec<ColumnId>, Infallible>> + '_ {
    (0..m.n_rows()).map(|r| Ok(m.row(r).to_vec()))
}

fn switch_policies() -> [SwitchPolicy; 3] {
    [
        SwitchPolicy::never(),
        SwitchPolicy::always_at(7),
        SwitchPolicy::paper(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn imp_streamed_parallel_matches_in_memory(
        m in matrix_strategy(24, 12),
        minconf in prop_oneof![Just(1.0), Just(0.9), Just(0.6), Just(0.34)],
        threads in 1usize..=8,
        reverse in any::<bool>(),
        policy in 0usize..3,
    ) {
        let config = ImplicationConfig::new(minconf)
            .with_reverse(reverse)
            .with_switch(switch_policies()[policy]);
        let expected = find_implications(&m, &config);
        let out = find_implications_streamed_parallel(
            rows_of(&m), m.n_cols(), &config, threads,
        ).expect("streamed parallel");
        prop_assert_eq!(out.rules, expected.rules);
        prop_assert_eq!(out.workers.len(), threads);
    }

    #[test]
    fn sim_streamed_parallel_matches_in_memory(
        m in matrix_strategy(24, 12),
        minsim in prop_oneof![Just(1.0), Just(0.8), Just(0.5), Just(0.25)],
        threads in 1usize..=8,
        policy in 0usize..3,
    ) {
        let config = SimilarityConfig::new(minsim)
            .with_switch(switch_policies()[policy]);
        let expected = find_similarities(&m, &config);
        let out = find_similarities_streamed_parallel(
            rows_of(&m), m.n_cols(), &config, threads,
        ).expect("streamed parallel");
        prop_assert_eq!(out.rules, expected.rules);
        prop_assert_eq!(out.workers.len(), threads);
    }
}

/// The acceptance sweep: on planted data the parallel streamed drivers
/// reproduce the sequential streamed output byte-for-byte (rendered
/// rule strings, not just the structs) for threads 1, 2, 4, 8.
#[test]
fn planted_thread_sweep_is_byte_identical_to_sequential_streamed() {
    let data = planted_implications(&PlantedConfig::new(2000, 30, 6, 42));
    let m = &data.matrix;

    for minconf in [1.0, 0.9, 0.7] {
        let config = ImplicationConfig::new(minconf);
        let seq = find_implications_streamed(rows_of(m), m.n_cols(), &config).expect("sequential");
        let seq_text: Vec<String> = seq.rules.iter().map(ToString::to_string).collect();
        for threads in [1, 2, 4, 8] {
            let par = find_implications_streamed_parallel(rows_of(m), m.n_cols(), &config, threads)
                .expect("parallel");
            let par_text: Vec<String> = par.rules.iter().map(ToString::to_string).collect();
            assert_eq!(par_text, seq_text, "minconf={minconf} threads={threads}");
            assert_eq!(par.workers.len(), threads);
        }
    }

    for minsim in [0.9, 0.6] {
        let config = SimilarityConfig::new(minsim);
        let seq = find_similarities_streamed(rows_of(m), m.n_cols(), &config).expect("sequential");
        let seq_text: Vec<String> = seq.rules.iter().map(ToString::to_string).collect();
        for threads in [1, 2, 4, 8] {
            let par = find_similarities_streamed_parallel(rows_of(m), m.n_cols(), &config, threads)
                .expect("parallel");
            let par_text: Vec<String> = par.rules.iter().map(ToString::to_string).collect();
            assert_eq!(par_text, seq_text, "minsim={minsim} threads={threads}");
            assert_eq!(par.workers.len(), threads);
        }
    }
}

/// The block size the engine resolves: `DMC_BLOCK_ROWS` when set to a
/// positive integer, else the config default.
fn engine_block_rows() -> usize {
    std::env::var("DMC_BLOCK_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(dmc_core::DEFAULT_BLOCK_ROWS)
}

/// Forced early switches exercise the shared bitmap tail; the merged
/// rules must still match, and the reported switch position is a single
/// global one, aligned to a scheduler block boundary and identical at
/// every thread count.
#[test]
fn forced_switch_sweep_matches_and_reports_block_aligned_position() {
    let data = planted_implications(&PlantedConfig::new(600, 20, 4, 7));
    let m = &data.matrix;
    let config = ImplicationConfig::new(0.85).with_switch(SwitchPolicy::always_at(100));
    let block = engine_block_rows();

    let seq = find_implications_streamed(rows_of(m), m.n_cols(), &config).expect("sequential");
    let seq_at = seq.bitmap_switch_at.expect("switch must trigger");
    for threads in [1, 2, 4, 8] {
        let par = find_implications_streamed_parallel(rows_of(m), m.n_cols(), &config, threads)
            .expect("parallel");
        assert_eq!(par.rules, seq.rules, "threads={threads}");
        // The block engine checks the policy at block boundaries, so it
        // switches at the first boundary at or after the sequential
        // position — the same one at every thread count.
        let at = par.bitmap_switch_at.expect("switch must trigger");
        assert_eq!(at % block, 0, "threads={threads}: block-aligned");
        assert!(at >= seq_at && at < seq_at + block, "threads={threads}");
        assert!(
            par.workers.iter().all(|w| w.switch_at.is_none()),
            "workers never switch independently"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scheduler accounting: the per-worker `blocks_processed` counters
    /// sum to the number of blocks each counting stage chops the stream
    /// into, and the credited worker tallies partition the run counters
    /// (checked by `RunReport::reconciles`).
    #[test]
    fn blocks_processed_sums_across_workers(
        m in matrix_strategy(24, 12),
        threads in 1usize..=8,
    ) {
        let config = ImplicationConfig::new(0.7).with_switch(SwitchPolicy::never());
        let out = find_implications_streamed_parallel(
            rows_of(&m), m.n_cols(), &config, threads,
        ).expect("streamed parallel");
        let block = engine_block_rows();
        // Staged pipeline: the 100% stage and the sub-100% stage each
        // chop the same replayed stream into ceil(rows / block) blocks.
        let per_stage = m.n_rows().div_ceil(block) as u64;
        let claimed: u64 = out.workers.iter().map(|w| w.blocks_processed).sum();
        prop_assert_eq!(claimed, 2 * per_stage);
        let stolen: u64 = out.workers.iter().map(|w| w.blocks_stolen).sum();
        prop_assert!(stolen <= claimed);
        prop_assert!(out.report.reconciles(), "worker tallies must partition run counters");
    }
}
