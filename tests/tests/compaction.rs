//! Compaction fidelity: `expand(compact(rules))` must reproduce the
//! mined rule set byte for byte, for every algorithm, threshold and
//! reverse-emission setting — the same identity CI's
//! `compaction-fidelity` job enforces end-to-end through the `dmc`
//! binary. On top of the identity, planted and handcrafted matrices pin
//! the expected base exactly, and the boost filters must behave as
//! filters (monotone, nested) rather than re-rankings.

use dmc_core::{
    compact, compact_implications, compact_similarities, CompactionConfig, Miner, SparseMatrix,
};
use dmc_datagen::{
    dictionary, link_graph, planted_implications, weblog, DictionaryConfig, LinkGraphConfig,
    PlantedConfig, WeblogConfig,
};
use proptest::prelude::*;

/// The byte form both sides of the identity are compared in: the
/// rules-file serialization, exactly what `dmc --output` writes.
fn rule_bytes(imps: &[dmc_core::ImplicationRule], sims: &[dmc_core::SimilarityRule]) -> Vec<u8> {
    let mut buf = Vec::new();
    dmc_core::write_rules(imps, sims, &mut buf).unwrap();
    buf
}

/// Mines `m` both ways at `minconf`, compacts, expands, and asserts the
/// byte identity. Returns the compaction ratio observed without reverses.
fn assert_imp_roundtrip(m: &SparseMatrix, minconf: f64) -> f64 {
    let mut ratio = 1.0;
    for emit_reverse in [false, true] {
        let out = Miner::implications(minconf)
            .reverse(emit_reverse)
            .mine(m)
            .unwrap();
        let base = compact_implications(&out.rules, minconf, None);
        assert!(base.rules_in_base() <= base.rules_in());
        let (ei, es) = base.expand();
        assert!(es.is_empty());
        assert_eq!(
            rule_bytes(&ei, &[]),
            rule_bytes(&out.rules, &[]),
            "minconf {minconf} reverse {emit_reverse}: expansion must be byte-identical"
        );
        if !emit_reverse {
            ratio = base.ratio();
        }
    }
    ratio
}

fn assert_sim_roundtrip(m: &SparseMatrix, minsim: f64) {
    let out = Miner::similarities(minsim).mine(m).unwrap();
    let base = compact_similarities(&out.rules, minsim);
    let (ei, es) = base.expand();
    assert!(ei.is_empty());
    assert_eq!(
        rule_bytes(&[], &es),
        rule_bytes(&[], &out.rules),
        "minsim {minsim}: expansion must be byte-identical"
    );
}

/// 4–40 rows over 12 columns, dense enough that containments, equalities
/// and reverse-qualifying rules all arise naturally.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..12, 0..=8)
            .prop_map(|set| set.into_iter().collect::<Vec<u32>>()),
        4..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok()).unwrap_or(64)))]

    #[test]
    fn random_matrices_round_trip(rows in rows_strategy(),
                                  conf_pct in 50u32..=100,
                                  sim_pct in 30u32..=100) {
        let m = SparseMatrix::from_rows(12, rows);
        assert_imp_roundtrip(&m, f64::from(conf_pct) / 100.0);
        assert_sim_roundtrip(&m, f64::from(sim_pct) / 100.0);
    }
}

#[test]
fn generator_corpora_round_trip() {
    // Shapes with real structure: planted implication pairs, dictionary
    // prefix containments, mirrored link columns, weblog hub chains.
    let planted = planted_implications(&PlantedConfig::new(2500, 40, 8, 5)).matrix;
    let dict = dictionary(&DictionaryConfig::new(400, 1200, 9));
    let links = link_graph(&LinkGraphConfig::new(1200, 13)).forward;
    let logs = weblog(&WeblogConfig::new(2000, 150, 17));
    for m in [&planted, &dict, &links, &logs] {
        for minconf in [1.0, 0.95, 0.8] {
            assert_imp_roundtrip(m, minconf);
        }
        for minsim in [1.0, 0.7, 0.5] {
            assert_sim_roundtrip(m, minsim);
        }
    }
}

#[test]
fn planted_rules_without_closure_structure_are_their_own_base() {
    // Planted pairs are sub-100% rules between otherwise independent
    // columns: no containments, no equalities, no reverses (default
    // emission), so compaction has nothing to deduce and the base must
    // equal the full set.
    let data = planted_implications(&PlantedConfig::new(4000, 40, 8, 2));
    let out = Miner::implications(0.9).mine(&data.matrix).unwrap();
    assert!(
        out.rules.iter().all(|r| r.hits < r.lhs_ones),
        "planted data must not produce 100% rules at these rates"
    );
    let base = compact_implications(&out.rules, 0.9, None);
    assert_eq!(base.rules_in_base(), out.rules.len());
    let kept: Vec<_> = base.implications.iter().map(|b| b.rule).collect();
    assert_eq!(kept, out.rules, "the base is the rule set itself");
}

#[test]
fn containment_chain_and_equality_class_bases_are_exact() {
    // Columns 0 ⊂ 1 ⊂ 2 (a containment chain) and 3 = 4 (an equality
    // class): at minconf 1.0 the mine emits the transitive closure; the
    // base must keep only the covering chain edges and the class edge.
    let m = SparseMatrix::from_rows(
        5,
        vec![
            vec![0, 1, 2],
            vec![1, 2],
            vec![2],
            vec![3, 4],
            vec![3, 4],
            vec![2, 3, 4],
        ],
    );
    let out = Miner::implications(1.0).reverse(true).mine(&m).unwrap();
    let mined: Vec<(u32, u32)> = out.rules.iter().map(|r| (r.lhs, r.rhs)).collect();
    assert_eq!(mined, vec![(0, 1), (0, 2), (1, 2), (3, 4), (4, 3)]);
    let base = compact_implications(&out.rules, 1.0, None);
    let kept: Vec<(u32, u32)> = base
        .implications
        .iter()
        .map(|b| (b.rule.lhs, b.rule.rhs))
        .collect();
    assert_eq!(
        kept,
        vec![(0, 1), (1, 2), (3, 4)],
        "transitive edge dropped, equality class kept as one edge"
    );
    let (ei, _) = base.expand();
    assert_eq!(rule_bytes(&ei, &[]), rule_bytes(&out.rules, &[]));
}

#[test]
fn boost_filters_are_monotone_and_top_k_is_nested() {
    let m = dictionary(&DictionaryConfig::new(300, 900, 21));
    let out = Miner::implications(0.85).reverse(true).mine(&m).unwrap();
    let base = compact_implications(&out.rules, 0.85, None);
    assert!(base.rules_in_base() > 4, "need a non-trivial base");

    // Raising min_boost only removes rules, and every selection is a
    // subset of the unfiltered base.
    let mut previous: Option<Vec<dmc_core::ImplicationRule>> = None;
    for min_boost in [0.0, 0.9, 1.0, 1.05, 1.5] {
        let (bi, _) = base.select(&CompactionConfig::default().with_min_boost(min_boost));
        let rules: Vec<_> = bi.iter().map(|b| b.rule).collect();
        if let Some(prev) = &previous {
            assert!(
                rules.iter().all(|r| prev.contains(r)),
                "min_boost {min_boost}: selection must shrink monotonically"
            );
        }
        previous = Some(rules);
    }

    // top_k selections are nested: the k best are among the k+1 best.
    let mut previous: Option<Vec<dmc_core::ImplicationRule>> = None;
    for k in 1..=base.rules_in_base() {
        let (bi, _) = base.select(&CompactionConfig::default().with_top_k(k));
        assert!(bi.len() <= k);
        let rules: Vec<_> = bi.iter().map(|b| b.rule).collect();
        if let Some(prev) = &previous {
            assert!(
                prev.iter().all(|r| rules.contains(r)),
                "top-{k} must contain top-{}",
                k - 1
            );
        }
        previous = Some(rules);
    }
}

#[test]
fn mixed_rule_sets_compact_jointly() {
    // One call over both kinds at once (the `dmc compact` path): the
    // identity holds per kind and the report tallies both.
    let m = dictionary(&DictionaryConfig::new(350, 1000, 33));
    let imps = Miner::implications(0.9).mine(&m).unwrap().rules;
    let sims = Miner::similarities(0.6).mine(&m).unwrap().rules;
    let base = compact(&imps, &sims, 0.9, 0.6, None);
    assert_eq!(base.rules_in(), imps.len() + sims.len());
    let (ei, es) = base.expand();
    assert_eq!(rule_bytes(&ei, &es), rule_bytes(&imps, &sims));
    let report = base.report();
    assert_eq!(report.rules_in, base.rules_in() as u64);
    assert_eq!(report.boost_hist.iter().sum::<u64>(), report.rules_in_base);
}
