//! The run-report observability layer: schema stability across all eight
//! drivers, JSON well-formedness, and the counter reconciliation
//! invariants on random inputs.

use dmc_core::{ImplicationConfig, MinedOutput, Miner, RunReport, SimilarityConfig, SparseMatrix};
use dmc_integration_tests::{matrix_strategy, threshold_strategy};
use dmc_metrics::json::JsonValue;
use proptest::prelude::*;
use std::convert::Infallible;

fn fig2() -> SparseMatrix {
    SparseMatrix::from_rows(
        6,
        vec![
            vec![1, 5],
            vec![2, 3, 4],
            vec![2, 4],
            vec![0, 1, 2, 5],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![3, 5],
            vec![0, 1, 4],
        ],
    )
}

fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<u32>, Infallible>> {
    m.rows().map(|r| Ok(r.to_vec())).collect()
}

/// Lifts the host-core cap on `Miner`'s worker resolution so the
/// parallel drivers actually spawn the requested counts here even on a
/// single-core CI box. (Always the same value, so concurrent calls from
/// the test harness are benign.)
fn force_workers() {
    std::env::set_var("DMC_SCHED_OVERSUBSCRIBE", "1");
}

/// Every report from every driver for `m`, labeled.
fn all_reports(m: &SparseMatrix, threshold: f64) -> Vec<(String, RunReport)> {
    force_workers();
    let mut out = Vec::new();
    for threads in [1usize, 3] {
        let imp = Miner::implications(threshold)
            .threads(threads)
            .mine(m)
            .expect("in-memory mines cannot fail");
        out.push((format!("imp mem t={threads}"), imp.report));
        let imp_s = Miner::implications(threshold)
            .threads(threads)
            .mine_streamed(rows_of(m), m.n_cols())
            .unwrap();
        out.push((format!("imp stream t={threads}"), imp_s.report));
        let sim = Miner::similarities(threshold)
            .threads(threads)
            .mine(m)
            .expect("in-memory mines cannot fail");
        out.push((format!("sim mem t={threads}"), sim.report));
        let sim_s = Miner::similarities(threshold)
            .threads(threads)
            .mine_streamed(rows_of(m), m.n_cols())
            .unwrap();
        out.push((format!("sim stream t={threads}"), sim_s.report));
    }
    out
}

/// The golden top-level key set of `dmc.run_report.v8`, in serialization
/// order. A failure here means the schema changed: bump the version.
const GOLDEN_KEYS: &[&str] = &[
    "schema",
    "algorithm",
    "mode",
    "threads",
    "rows",
    "cols",
    "threshold",
    "rules",
    "counters",
    "hundred_stage",
    "sub_stage",
    "reverse_rules",
    "phases",
    "wall_seconds",
    "peak_candidates",
    "peak_counter_bytes",
    "bitmap_switch_at",
    "spill_bytes",
    "io",
    "workers",
    "serve",
    "ingest",
    "shard",
    "compaction",
    "telemetry",
];

const GOLDEN_IO_KEYS: &[&str] = &[
    "frames_written",
    "frames_read",
    "replays",
    "write_retries",
    "read_retries",
    "corrupt_frames",
];

const GOLDEN_COUNTER_KEYS: &[&str] = &[
    "rows_scanned",
    "candidates_admitted",
    "candidates_deleted",
    "misses_counted",
    "rules_emitted",
];

#[test]
fn all_eight_drivers_emit_the_same_schema() {
    let m = fig2();
    for (label, report) in all_reports(&m, 0.8) {
        let json = JsonValue::parse(&report.to_json())
            .unwrap_or_else(|e| panic!("{label}: invalid JSON: {e}"));
        assert_eq!(json.keys(), GOLDEN_KEYS, "{label}: top-level keys");
        assert_eq!(
            json.get("schema").and_then(JsonValue::as_str),
            Some(dmc_core::RUN_REPORT_SCHEMA),
            "{label}"
        );
        assert_eq!(
            json.get("counters").unwrap().keys(),
            GOLDEN_COUNTER_KEYS,
            "{label}: counter keys"
        );
        // Both stages ran at 0.8 with the hundred stage on.
        for stage in ["hundred_stage", "sub_stage"] {
            let s = json.get(stage).unwrap();
            assert_eq!(
                s.get("counters").unwrap().keys(),
                GOLDEN_COUNTER_KEYS,
                "{label}: {stage} counter keys"
            );
        }
        // Streamed runs carry the spill-io counter section; in-memory
        // runs serialize it as null.
        let io = json.get("io").unwrap();
        if label.contains("stream") {
            assert_eq!(io.keys(), GOLDEN_IO_KEYS, "{label}: io keys");
        } else {
            assert!(matches!(io, JsonValue::Null), "{label}: io must be null");
        }
        // The driver's own end-to-end wall clock covers at least the
        // named phases (the bench suite reads it instead of re-timing).
        let wall = json
            .get("wall_seconds")
            .and_then(JsonValue::as_f64)
            .expect("wall_seconds is a number");
        assert!(
            wall + 1e-6 >= report.phase_total_seconds(),
            "{label}: wall {wall} < phase sum {}",
            report.phase_total_seconds()
        );
        assert!(report.reconciles(), "{label}: reconciliation");
    }
}

#[test]
fn golden_report_values_fig2() {
    let m = fig2();
    let out = Miner::implications(0.8)
        .mine(&m)
        .expect("in-memory mines cannot fail");
    let json = JsonValue::parse(&out.report.to_json()).unwrap();
    let u = |k: &str| json.get(k).and_then(JsonValue::as_u64).unwrap();
    assert_eq!(
        json.get("algorithm").and_then(JsonValue::as_str),
        Some("implication")
    );
    assert_eq!(
        json.get("mode").and_then(JsonValue::as_str),
        Some("in-memory")
    );
    assert_eq!(u("rows"), 9);
    assert_eq!(u("cols"), 6);
    assert_eq!(u("rules"), 2);
    assert_eq!(json.get("threshold").and_then(JsonValue::as_f64), Some(0.8));
    let counters = json.get("counters").unwrap();
    let c = |k: &str| counters.get(k).and_then(JsonValue::as_u64).unwrap();
    assert_eq!(
        c("candidates_admitted"),
        c("candidates_deleted") + c("rules_emitted")
    );
    assert!(c("rows_scanned") >= 9, "both stages scan all rows");
    // Sequential in-memory run: no workers, no spill.
    assert_eq!(u("spill_bytes"), 0);
    assert_eq!(
        json.get("workers")
            .and_then(JsonValue::as_array)
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn streamed_reports_carry_spill_bytes() {
    let m = fig2();
    // Encoded spill size: 12-byte frame header (len, ~len guard, crc32)
    // per row + 4 bytes per id.
    let expected = (12 * m.n_rows() + 4 * m.nnz()) as u64;
    force_workers();
    for threads in [1usize, 4] {
        let out = Miner::implications(0.8)
            .threads(threads)
            .mine_streamed(rows_of(&m), m.n_cols())
            .unwrap();
        assert_eq!(out.report.spill_bytes, expected, "threads={threads}");
        assert_eq!(out.report.mode, "streamed");
        // The io section mirrors what the run actually did: one frame
        // per row written, every frame read back once per replay, and
        // no corruption on a healthy filesystem.
        let io = out.report.io.expect("streamed runs report io counters");
        assert_eq!(io.frames_written, m.n_rows() as u64, "threads={threads}");
        assert!(io.replays >= 1, "threads={threads}");
        assert_eq!(
            io.frames_read,
            io.frames_written * io.replays,
            "threads={threads}"
        );
        assert_eq!(io.corrupt_frames, 0, "threads={threads}");
        assert_eq!(io.write_retries + io.read_retries, 0, "threads={threads}");
    }
}

#[test]
fn parallel_reports_sum_workers_to_run_counters() {
    force_workers();
    let m = fig2();
    let out = Miner::similarities(0.4)
        .threads(4)
        .mine(&m)
        .expect("in-memory mines cannot fail");
    let r = &out.report;
    assert_eq!(r.workers.len(), 4);
    let admitted: u64 = r.workers.iter().map(|w| w.tally.candidates_admitted).sum();
    assert_eq!(admitted, r.counters.candidates_admitted);
    assert!(r.reconciles());
}

#[test]
fn report_accessible_through_the_output_trait() {
    let m = fig2();
    let imp = Miner::implications(0.8)
        .mine(&m)
        .expect("in-memory mines cannot fail");
    let sim = Miner::similarities(0.4)
        .mine(&m)
        .expect("in-memory mines cannot fail");
    assert_eq!(MinedOutput::report(&imp).algorithm, "implication");
    assert_eq!(MinedOutput::report(&sim).algorithm, "similarity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counters reconcile and the switch position stays in range on random
    /// matrices, across every driver, at boundary-heavy thresholds.
    #[test]
    fn reports_reconcile_on_random_matrices(
        m in matrix_strategy(24, 10),
        threshold in threshold_strategy(),
    ) {
        for (label, report) in all_reports(&m, threshold) {
            prop_assert!(report.reconciles(), "{}: {:?}", label, report);
            if let Some(at) = report.bitmap_switch_at {
                prop_assert!(at <= m.n_rows(), "{label}: switch at {at}");
            }
            prop_assert_eq!(report.rows, m.n_rows());
            prop_assert_eq!(report.cols, m.n_cols());
            let json = report.to_json();
            let parsed = JsonValue::parse(&json);
            prop_assert!(parsed.is_ok(), "{}: {:?}", label, parsed.err());
        }
    }

    /// The forced bitmap switch records a position never past the row
    /// count, and the rules stay identical to the unswitched run.
    #[test]
    fn forced_switch_positions_stay_in_range(
        m in matrix_strategy(20, 8),
        at in 0usize..12,
    ) {
        let cfg = ImplicationConfig::new(0.8)
            .with_switch(dmc_core::SwitchPolicy::always_at(at));
        let out = dmc_core::find_implications(&m, &cfg);
        if let Some(pos) = out.report.bitmap_switch_at {
            prop_assert!(pos <= m.n_rows());
        }
        prop_assert!(out.report.reconciles());
        let plain = dmc_core::find_implications(
            &m,
            &ImplicationConfig::new(0.8).with_switch(dmc_core::SwitchPolicy::never()),
        );
        prop_assert_eq!(out.rules, plain.rules);

        let sim = dmc_core::find_similarities(
            &m,
            &SimilarityConfig::new(0.75).with_switch(dmc_core::SwitchPolicy::always_at(at)),
        );
        prop_assert!(sim.report.reconciles());
    }
}
