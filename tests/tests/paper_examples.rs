//! The paper's worked examples, end-to-end through the public API.
//!
//! Matrices for Figures 1, 2 and 5 are reconstructed from the papers'
//! textual constraints (the figures themselves are images); see DESIGN.md
//! for the reconstruction notes and known inconsistencies.

use dmc_core::{
    find_implications, find_similarities, ImplicationConfig, RowOrder, SimilarityConfig,
    SparseMatrix,
};

/// Figure 1: 4 transactions over c1..c3 (0-indexed below).
fn fig1() -> SparseMatrix {
    SparseMatrix::from_rows(3, vec![vec![1, 2], vec![0, 1, 2], vec![0], vec![1]])
}

/// Figure 2: 9 rows over c1..c6, five 1s per column.
fn fig2() -> SparseMatrix {
    SparseMatrix::from_rows(
        6,
        vec![
            vec![1, 5],
            vec![2, 3, 4],
            vec![2, 4],
            vec![0, 1, 2, 5],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![3, 5],
            vec![0, 1, 4],
        ],
    )
}

/// Example 1.2: only `c3 => c2` at 100% confidence.
#[test]
fn example_1_2() {
    let out = find_implications(&fig1(), &ImplicationConfig::new(1.0));
    assert_eq!(out.pairs(), vec![(2, 1)]);
}

/// Example 3.1: `c1 => c2` and `c3 => c5` at 80% confidence, in any row
/// order and with any switch point.
#[test]
fn example_3_1() {
    let m = fig2();
    for order in [
        RowOrder::Original,
        RowOrder::BucketedSparsestFirst,
        RowOrder::ExactSparsestFirst,
    ] {
        let out = find_implications(&m, &ImplicationConfig::new(0.8).with_row_order(order));
        assert_eq!(out.pairs(), vec![(0, 1), (2, 4)]);
    }
}

/// Example 1.3's budget arithmetic drives the public config: a column with
/// 100 ones at 85% tolerates exactly 15 misses, so a 85-hit rule holds and
/// an 84-hit rule does not.
#[test]
fn example_1_3_boundary_through_public_api() {
    // Column 0: 100 ones. Column 1: hits in 85 of them plus 15 own rows.
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..100u32 {
        if i < 85 {
            rows.push(vec![0, 1]);
        } else {
            rows.push(vec![0]);
        }
    }
    for _ in 0..15 {
        rows.push(vec![1]);
    }
    let m = SparseMatrix::from_rows(2, rows);
    let at_85 = find_implications(&m, &ImplicationConfig::new(0.85));
    assert_eq!(at_85.pairs(), vec![(0, 1)]);
    let at_86 = find_implications(&m, &ImplicationConfig::new(0.86));
    assert!(at_86.rules.is_empty());
}

/// Figure 5 / Example 5.1: no similar pair at 75%, and the maximum-hits
/// pruning toggle does not change the answer.
#[test]
fn example_5_1() {
    let m = SparseMatrix::from_rows(
        2,
        vec![
            vec![1],
            vec![0, 1],
            vec![1],
            vec![0, 1],
            vec![0],
            vec![0],
            vec![1],
        ],
    );
    for prune in [true, false] {
        let out = find_similarities(
            &m,
            &SimilarityConfig::new(0.75).with_max_hits_pruning(prune),
        );
        assert!(out.rules.is_empty(), "prune={prune}");
    }
    // At 50% the pair qualifies: hits 2, union 7 -> no; check the true
    // similarity: S_1 = {r2, r4, r5, r6}, S_2 = {r1, r2, r3, r4, r7},
    // hits = 2, union = 7, sim = 2/7 ≈ 0.286.
    let loose = find_similarities(&m, &SimilarityConfig::new(0.28));
    assert_eq!(loose.pairs(), vec![(0, 1)]);
    assert_eq!(loose.rules[0].hits, 2);
}

/// §4.1's memory claim on Figure 2: scanning sparsest-first lowers the
/// peak candidate count (9 original vs 8 sorted on the reconstruction).
#[test]
fn fig2_sparsest_first_lowers_peak_memory() {
    // The paper's §4.1 histories count candidates at end-of-row, with
    // lists retained at completion; the per-row history reproduces that
    // accounting (the live tracker also sees intra-row transients).
    let run = |order: RowOrder| {
        let mut cfg = ImplicationConfig::new(0.8).with_row_order(order);
        cfg.release_completed = false;
        cfg.hundred_stage = false;
        cfg.record_memory_history = true;
        find_implications(&fig2(), &cfg)
    };
    let orig = run(RowOrder::Original);
    let sorted = run(RowOrder::ExactSparsestFirst);
    let peak = |out: &dmc_core::ImplicationOutput| {
        out.memory
            .history()
            .iter()
            .map(|s| s.candidates)
            .max()
            .unwrap()
    };
    assert_eq!(peak(&orig), 9);
    assert_eq!(peak(&sorted), 8);
    assert_eq!(orig.rules, sorted.rules);
}
