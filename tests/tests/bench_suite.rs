//! The benchmark suite as a correctness instrument: a real (tiny) suite
//! run must emit a valid `dmc.bench.v1` record whose counters reconcile,
//! and the comparator must pass a record against itself and fail a
//! synthetically slowed cell.

use dmc_bench::baseline::{self, BENCH_SCHEMA};
use dmc_bench::compare::{compare, Tolerance, Verdict};
use dmc_bench::datasets::Scale;
use dmc_bench::suite::{run_suite, BenchSuite, SuiteConfig};

/// The smallest honest suite: one scale, two thread counts (so the
/// thread-invariance cross-check actually fires), three repeats.
fn tiny_config() -> SuiteConfig {
    let mut config = SuiteConfig::quick();
    config.name = "test".into();
    config.scales = vec![Scale::Small];
    config.threads = vec![1, 2];
    config.warmup = 0;
    config.repeats = 3;
    config
}

fn run_tiny() -> BenchSuite {
    run_suite(&tiny_config(), |_| {})
}

#[test]
fn suite_run_emits_a_valid_reconciled_record() {
    let suite = run_tiny();
    assert_eq!(suite.schema, BENCH_SCHEMA);
    // 1 scale x 2 modes x 2 algorithms x 2 thread counts, plus the
    // engine query/ingest, shard mine/merge and compact base/expand
    // cell pairs for the scale.
    assert_eq!(suite.cells.len(), 14);
    for cell in &suite.cells {
        assert_eq!(cell.seconds.len(), 3, "{}", cell.id);
        assert!(cell.median_seconds > 0.0, "{}", cell.id);
        assert!(cell.mad_seconds >= 0.0, "{}", cell.id);
        assert!(cell.rules > 0, "{}: planted rules must be found", cell.id);
        assert!(cell.rows_per_sec > 0.0, "{}", cell.id);
        let streamed = cell.mode == "stream";
        assert_eq!(
            cell.counters.spill_bytes > 0,
            streamed,
            "{}: spill bytes iff streamed",
            cell.id
        );
        assert_eq!(cell.spill_bytes_per_sec > 0.0, streamed, "{}", cell.id);
        let expected_id = format!(
            "{}/{}/t{}/{}",
            cell.algorithm, cell.mode, cell.threads, cell.scale
        );
        assert_eq!(cell.id, expected_id);
        if cell.algorithm == "engine" {
            // Engine cells repurpose rows_scanned as their unit of work
            // (queries answered / rows ingested); the miss-counting
            // identity below is a driver-scan property and does not
            // apply to them.
            assert_eq!(cell.threads, 1, "{}", cell.id);
            assert!(cell.counters.rows_scanned > 0, "{}", cell.id);
            continue;
        }
        if cell.algorithm == "compact" {
            // Compact cells count rules through the stage (in via
            // rows_scanned, out via rules_emitted), not row scans, so
            // the miss-counting identity does not apply.
            assert_eq!(cell.threads, 1, "{}", cell.id);
            assert!(cell.counters.rows_scanned > 0, "{}", cell.id);
            continue;
        }
        if cell.algorithm == "shard" {
            // Shard cells report the merged run: per-shard counters
            // summed, so rows_scanned is shards x dataset rows and the
            // identity holds on the sums too.
            assert_eq!(cell.threads, 4, "{}", cell.id);
            assert_eq!(
                cell.counters.candidates_admitted,
                cell.counters.candidates_deleted + cell.counters.rules_emitted,
                "{}",
                cell.id
            );
            continue;
        }
        // The miss-counting identity, straight from the recorded
        // fingerprint: every admitted candidate was deleted or emitted.
        assert_eq!(
            cell.counters.candidates_admitted,
            cell.counters.candidates_deleted + cell.counters.rules_emitted,
            "{}",
            cell.id
        );
    }
    // The engine pair reports its throughput units: queries answered and
    // rows ingested (a quarter of the dataset, per the 3:4 base split).
    let query = suite.cell("engine/query/t1/small").unwrap();
    assert_eq!(query.counters.rows_scanned, 20_000);
    let ingest = suite.cell("engine/ingest/t1/small").unwrap();
    assert_eq!(ingest.counters.rows_scanned, 1500);
    assert_eq!(
        ingest.rules,
        suite.cell("imp/mem/t1/small").unwrap().rules,
        "incremental ingest ends at the batch miner's rule set"
    );
    // The compact pair is a closed loop: the base cell's output count is
    // the expand cell's input count, and expansion ends back at the base
    // cell's input count (the identity run_suite asserts each repeat).
    let base = suite.cell("compact/base/t1/small").unwrap();
    let expand = suite.cell("compact/expand/t1/small").unwrap();
    assert!(base.counters.rules_emitted <= base.counters.rows_scanned);
    assert_eq!(expand.counters.rows_scanned, base.counters.rules_emitted);
    assert_eq!(expand.counters.rules_emitted, base.counters.rows_scanned);
    // DMC-imp counters are exact under the block scheduler, so even the
    // cross-engine pair (t1 sequential vs t2 block-scheduler) agrees on
    // the full work counters; run_suite asserts the per-engine and
    // cross-engine invariants internally, but check one pair here so the
    // property is visible in a test, not only in a panic message.
    let t1 = suite.cell("imp/mem/t1/small").unwrap();
    let t2 = suite.cell("imp/mem/t2/small").unwrap();
    assert_eq!(t1.counters.work_counters(), t2.counters.work_counters());
    assert_eq!(t1.rules, t2.rules);
}

#[test]
fn suite_record_round_trips_and_self_compares_clean() {
    let suite = run_tiny();
    let text = baseline::to_json(&suite);
    let back = baseline::parse(&text).expect("emitted record parses");
    assert_eq!(back, suite);

    let cmp = compare(&suite, &back, Tolerance::default()).unwrap();
    assert!(cmp.passes());
    assert!(cmp.cells.iter().all(|c| c.verdict == Verdict::Unchanged));
    assert!(cmp.cells.iter().all(|c| !c.counters_diverged));
}

#[test]
fn synthetically_slowed_cell_trips_the_gate() {
    let baseline = run_tiny();
    let mut slowed = baseline.clone();
    {
        let cell = &mut slowed.cells[0];
        // Well past any plausible noise band: 10x the median plus a
        // fat absolute offset.
        cell.median_seconds = cell.median_seconds * 10.0 + 1.0;
        for s in &mut cell.seconds {
            *s = *s * 10.0 + 1.0;
        }
    }
    let cmp = compare(&baseline, &slowed, Tolerance::default()).unwrap();
    assert!(!cmp.passes());
    let regressions = cmp.regressions();
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].id, baseline.cells[0].id);
    // Every other cell is untouched and stays unchanged.
    assert!(cmp.cells[1..]
        .iter()
        .all(|c| c.verdict == Verdict::Unchanged));
}
