//! Rule grouping (§6.3) on corpus-shaped data: topic clusters come out as
//! connected components.

use dmc_core::{
    find_implications, find_similarities, rule_closure, rule_groups, ImplicationConfig,
    SimilarityConfig,
};
use dmc_datagen::{news, NewsConfig};
use dmc_matrix::transform::prune_min_support;

#[test]
fn news_topics_form_rule_groups() {
    let mut cfg = NewsConfig::new(6000, 2500, 99);
    cfg.synonym_pairs = 0; // keep the graph to pure topic clusters
    let data = news(&cfg);
    let pruned = prune_min_support(&data.matrix, 5);
    let imps = find_implications(&pruned.matrix, &ImplicationConfig::new(0.85));
    let groups = rule_groups(pruned.matrix.n_cols(), &imps.rules, &[]);

    // Each planted topic's anchor must land in a group together with most
    // of its theme words.
    let to_pruned = |orig: u32| -> Option<u32> {
        pruned
            .original_ids
            .iter()
            .position(|&c| c == orig)
            .map(|p| p as u32)
    };
    let mut matched_topics = 0;
    for (t, &anchor) in data.anchors.iter().enumerate() {
        let Some(anchor_p) = to_pruned(anchor) else {
            continue;
        };
        let Some(group) = groups.iter().find(|g| g.contains(&anchor_p)) else {
            continue;
        };
        let theme_in_group = data.themes[t]
            .iter()
            .filter_map(|&w| to_pruned(w))
            .filter(|w| group.contains(w))
            .count();
        if theme_in_group >= 8 {
            matched_topics += 1;
        }
    }
    assert!(
        matched_topics >= data.anchors.len() - 1,
        "{matched_topics} of {} topics grouped",
        data.anchors.len()
    );
}

#[test]
fn closure_from_anchor_stays_inside_its_topic() {
    let mut cfg = NewsConfig::new(6000, 2500, 101);
    cfg.synonym_pairs = 0;
    let data = news(&cfg);
    let pruned = prune_min_support(&data.matrix, 5);
    let imps = find_implications(&pruned.matrix, &ImplicationConfig::new(0.85));

    let anchor_p = pruned
        .original_ids
        .iter()
        .position(|&c| c == data.anchors[0])
        .expect("anchor survives") as u32;
    let closure = rule_closure(&imps.rules, anchor_p);
    assert!(closure.len() >= 10, "closure found {} rules", closure.len());
    // The closure must cover most of topic 0's theme (very common
    // background words may legitimately join — "polgar -> said" — but no
    // other topic's vocabulary can).
    let topic0: Vec<u32> = std::iter::once(data.anchors[0])
        .chain(data.themes[0].iter().copied())
        .collect();
    let in_topic = closure
        .iter()
        .filter(|r| topic0.contains(&pruned.original_id(r.rhs)))
        .count();
    assert!(in_topic >= 10, "{in_topic} closure rules inside topic 0");
    for rule in &closure {
        let orig = pruned.original_id(rule.rhs);
        let other_topic = data
            .anchors
            .iter()
            .skip(1)
            .zip(data.themes.iter().skip(1))
            .any(|(&a, theme)| orig == a || theme.contains(&orig));
        assert!(
            !other_topic,
            "closure crossed into another topic via c{orig}"
        );
    }
}

#[test]
fn similarity_edges_join_groups() {
    // Two rule chains bridged by one similar pair.
    let m = dmc_core::SparseMatrix::from_rows(
        4,
        vec![
            vec![0, 1],
            vec![0, 1],
            vec![2, 3],
            vec![2, 3],
            vec![1, 2],
            vec![1, 2],
        ],
    );
    let imps = find_implications(&m, &ImplicationConfig::new(0.9));
    let sims = find_similarities(&m, &SimilarityConfig::new(0.3));
    let merged = rule_groups(4, &imps.rules, &sims.rules);
    assert_eq!(merged.len(), 1, "{merged:?}");
    assert_eq!(merged[0], vec![0, 1, 2, 3]);
}
