//! Truncation and structural-corruption coverage for the binary matrix
//! format: every section boundary, every specific `Corrupt` message.
//!
//! Layout under test (little-endian): `"DMCMAT01"` (8) | `n_cols` u64 |
//! `n_rows` u64 | `nnz` u64 | offsets `(n_rows+1)×u64` | ids `nnz×u32`.

use dmc_matrix::io_binary::{decode_matrix, encode_matrix, BinaryError};
use dmc_matrix::SparseMatrix;

const HEADER_BYTES: usize = 8 + 24;

fn sample() -> SparseMatrix {
    SparseMatrix::from_rows(7, vec![vec![0, 3, 6], vec![], vec![2], vec![1, 2, 3, 4, 5]])
}

/// Patches 8 bytes at `at` with a little-endian u64.
fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

#[test]
fn every_header_truncation_is_a_truncated_header() {
    let bytes = encode_matrix(&sample());
    for len in 0..HEADER_BYTES {
        assert!(
            matches!(
                decode_matrix(&bytes[..len]),
                Err(BinaryError::Corrupt("truncated header"))
            ),
            "prefix of {len} bytes"
        );
    }
}

#[test]
fn every_body_truncation_is_a_truncated_body() {
    let bytes = encode_matrix(&sample());
    for len in HEADER_BYTES..bytes.len() {
        assert!(
            matches!(
                decode_matrix(&bytes[..len]),
                Err(BinaryError::Corrupt("truncated body"))
            ),
            "prefix of {len} bytes"
        );
    }
    // The exact boundary: the full encoding decodes.
    assert!(decode_matrix(&bytes).is_ok());
}

#[test]
fn huge_counts_are_a_size_overflow_not_a_huge_allocation() {
    let mut bytes = encode_matrix(&sample());
    put_u64(&mut bytes, 16, u64::MAX); // n_rows
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("size overflow"))
    ));
    let mut bytes = encode_matrix(&sample());
    put_u64(&mut bytes, 24, u64::MAX / 2); // nnz
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("size overflow"))
    ));
}

#[test]
fn bad_first_offset_is_an_endpoint_error() {
    let mut bytes = encode_matrix(&sample());
    put_u64(&mut bytes, HEADER_BYTES, 1); // offsets[0] must be 0
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("offset endpoints"))
    ));
}

#[test]
fn bad_last_offset_is_an_endpoint_error() {
    let m = sample();
    let mut bytes = encode_matrix(&m);
    let last_offset_at = HEADER_BYTES + m.n_rows() * 8;
    put_u64(&mut bytes, last_offset_at, (m.nnz() + 1) as u64);
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("offset endpoints"))
    ));
}

#[test]
fn decreasing_offsets_are_not_monotone() {
    let m = sample();
    let mut bytes = encode_matrix(&m);
    // Raise an interior offset above its successor while keeping the
    // endpoints legal. sample row 0 has 3 ids, so offsets are
    // [0, 3, 3, 4, 9]; set offsets[1] to 4 > offsets[2] = 3.
    put_u64(&mut bytes, HEADER_BYTES + 8, 4);
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("offsets not monotone"))
    ));
}

#[test]
fn oversized_column_id_is_out_of_range() {
    let m = sample();
    let mut bytes = encode_matrix(&m);
    let last_id_at = bytes.len() - 4;
    bytes[last_id_at..].copy_from_slice(&(m.n_cols() as u32).to_le_bytes());
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("column id out of range"))
    ));
}

#[test]
fn duplicate_id_in_a_row_is_not_strictly_increasing() {
    let m = SparseMatrix::from_rows(5, vec![vec![1, 3]]);
    let mut bytes = encode_matrix(&m);
    // Overwrite the second id (3) with a copy of the first (1).
    let second_id_at = bytes.len() - 4;
    bytes[second_id_at..].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        decode_matrix(&bytes),
        Err(BinaryError::Corrupt("row not strictly increasing"))
    ));
}

#[test]
fn corruption_errors_render_their_reason() {
    let bytes = encode_matrix(&sample());
    let err = decode_matrix(&bytes[..4]).unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("corrupt") && text.contains("truncated header"),
        "{text}"
    );
}
