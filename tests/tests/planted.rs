//! Planted-rule recovery: the miners find exactly the pairs the generator
//! planted (when they truly qualify), on data whose shape matches the
//! paper's corpora.

use dmc_core::{find_implications, find_similarities, ImplicationConfig, SimilarityConfig};
use dmc_datagen::{
    dictionary, link_graph, news, planted_implications, weblog, DictionaryConfig, LinkGraphConfig,
    NewsConfig, PlantedConfig, WeblogConfig,
};
use dmc_matrix::transform::prune_min_support;

#[test]
fn planted_pairs_are_recovered_exactly() {
    for seed in [1u64, 2, 3] {
        let data = planted_implications(&PlantedConfig::new(4000, 40, 8, seed));
        let minconf = 0.9;
        let out = find_implications(&data.matrix, &ImplicationConfig::new(minconf));
        for (i, &(lhs, rhs)) in data.planted.iter().enumerate() {
            let qualifies = data.realized_confidence[i] >= minconf;
            let found = out.rules.iter().any(|r| r.lhs == lhs && r.rhs == rhs);
            assert_eq!(
                found, qualifies,
                "seed {seed} pair {i}: realized {:.3}",
                data.realized_confidence[i]
            );
        }
    }
}

#[test]
fn weblog_hub_chains_surface_as_rules() {
    let mut cfg = WeblogConfig::new(4000, 300, 5);
    cfg.crawlers = 2;
    cfg.hub_chains = 6;
    let m = weblog(&cfg);
    let out = find_implications(&m, &ImplicationConfig::new(0.9));
    // Each chain (2i -> 2i+1) was wired at 95% co-occurrence; most chains
    // must surface (sampling noise may drop the odd one below 0.9).
    let found = (0..6)
        .filter(|&i| {
            out.rules
                .iter()
                .any(|r| r.lhs == 2 * i && r.rhs == 2 * i + 1)
        })
        .count();
    assert!(found >= 4, "only {found} of 6 chains surfaced");
}

#[test]
fn link_mirrors_surface_as_similarity_rules() {
    let mut cfg = LinkGraphConfig::new(1500, 8);
    cfg.mirror_pairs = 12;
    let g = link_graph(&cfg);
    let out = find_similarities(&g.transposed, &SimilarityConfig::new(0.7));
    let found = (0..12u32)
        .filter(|&i| {
            let (a, b) = (2 * i, 2 * i + 1);
            out.rules
                .iter()
                .any(|r| (r.a == a && r.b == b) || (r.a == b && r.b == a))
        })
        .count();
    assert!(found >= 8, "only {found} of 12 mirror pairs found");
}

#[test]
fn news_topics_survive_support_pruning_of_the_background() {
    let data = news(&NewsConfig::new(6000, 3000, 77));
    let pruned = prune_min_support(&data.matrix, 5);
    let out = find_implications(&pruned.matrix, &ImplicationConfig::new(0.85));
    // The topic-0 anchor must imply most of its theme.
    let anchor_pruned = pruned
        .original_ids
        .iter()
        .position(|&c| c == data.anchors[0])
        .expect("anchor survives pruning") as u32;
    let theme_rules = out.rules.iter().filter(|r| r.lhs == anchor_pruned).count();
    assert!(theme_rules >= 8, "anchor implies {theme_rules} theme words");
}

#[test]
fn dictionary_synonyms_surface_as_similarity_rules() {
    let mut cfg = DictionaryConfig::new(800, 500, 31);
    cfg.synonym_pairs = 10;
    let m = dictionary(&cfg);
    let out = find_similarities(&m, &SimilarityConfig::new(0.6));
    let found = (0..10u32)
        .filter(|&i| {
            let (a, b) = (2 * i, 2 * i + 1);
            out.rules
                .iter()
                .any(|r| (r.a == a && r.b == b) || (r.a == b && r.b == a))
        })
        .count();
    assert!(found >= 7, "only {found} of 10 synonym pairs found");
}
