//! The out-of-core drivers must never leave spill files behind — not on
//! success, and not when the run aborts mid-stream with an error.
//!
//! Spill files carry a `dmc-spill-<pid>-` prefix, so this process can
//! check for its own leftovers without racing concurrent test runs.
//! Kept as a single `#[test]` so the success and error paths cannot
//! interleave with each other inside this binary.

use dmc_core::{
    find_implications_streamed, find_implications_streamed_parallel,
    find_similarities_streamed_parallel, ImplicationConfig, SimilarityConfig, StreamError,
};
use dmc_matrix::ColumnId;
use std::convert::Infallible;

fn my_spill_files() -> Vec<String> {
    let dir = std::env::temp_dir().join("dmc-spill");
    let prefix = format!("dmc-spill-{}-", std::process::id());
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with(&prefix))
        .collect()
}

fn good_rows() -> Vec<Result<Vec<ColumnId>, Infallible>> {
    (0..200).map(|r| Ok(vec![r % 5, 5 + r % 3])).collect()
}

#[test]
fn streamed_drivers_leave_no_spill_files() {
    assert_eq!(
        my_spill_files(),
        Vec::<String>::new(),
        "pre-existing spill files for this pid"
    );

    // Success paths: sequential and parallel, implication and similarity.
    find_implications_streamed(good_rows(), 8, &ImplicationConfig::new(0.8)).unwrap();
    assert_eq!(my_spill_files(), Vec::<String>::new(), "after sequential");

    find_implications_streamed_parallel(good_rows(), 8, &ImplicationConfig::new(0.8), 4).unwrap();
    assert_eq!(my_spill_files(), Vec::<String>::new(), "after parallel imp");

    find_similarities_streamed_parallel(good_rows(), 8, &SimilarityConfig::new(0.5), 3).unwrap();
    assert_eq!(my_spill_files(), Vec::<String>::new(), "after parallel sim");

    // Error path: a row references a column out of range after enough
    // valid rows that spill files exist when the error hits.
    let bad: Vec<Result<Vec<ColumnId>, Infallible>> = (0..100)
        .map(|r| {
            Ok(if r == 90 {
                vec![99]
            } else {
                vec![r % 4, 4 + r % 4]
            })
        })
        .collect();
    let err = find_implications_streamed(bad.clone(), 8, &ImplicationConfig::new(0.9)).unwrap_err();
    assert!(matches!(
        err,
        StreamError::ColumnOutOfRange { row: 90, id: 99 }
    ));
    assert_eq!(my_spill_files(), Vec::<String>::new(), "after error");

    let err =
        find_implications_streamed_parallel(bad, 8, &ImplicationConfig::new(0.9), 4).unwrap_err();
    assert!(matches!(
        err,
        StreamError::ColumnOutOfRange { row: 90, id: 99 }
    ));
    assert_eq!(
        my_spill_files(),
        Vec::<String>::new(),
        "after parallel error"
    );
}
