//! Property tests for the checksummed spill-frame codec.
//!
//! Two guarantees back the out-of-core drivers' exactness claim:
//!
//! * **round trip** — any batch of normalized rows spilled through
//!   `BucketSpill` replays to exactly the same rows, and
//! * **corruption detection** — flipping any single byte of any bucket
//!   file (header length, complement guard, CRC, or payload) makes the
//!   replay surface a typed `SpillReadError::Corrupt` instead of decoding
//!   garbage.
//!
//! Run with `PROPTEST_CASES=N` to scale the case count (CI's fault sweep
//! raises it well past the local default).

use dmc_matrix::spill::{BucketSpill, SpillReadError};
use dmc_matrix::spill_io::SpillSettings;
use dmc_matrix::ColumnId;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone case counter so concurrent proptest cases in this binary
/// never share a spill directory.
static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "dmc-frame-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// 1–24 normalized (sorted, deduplicated) rows over 64 columns, with
/// empty rows and duplicate rows arising naturally.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<ColumnId>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..64, 0..=16)
            .prop_map(|set| set.into_iter().collect::<Vec<ColumnId>>()),
        1..24,
    )
}

/// Spills `rows` into a fresh directory and returns the spill.
fn spill_rows(rows: &[Vec<ColumnId>], dir: &Path) -> BucketSpill {
    let settings = SpillSettings {
        dir: Some(dir.to_path_buf()),
        ..SpillSettings::default()
    };
    let mut spill = BucketSpill::with_settings(64, settings).expect("create spill");
    for row in rows {
        spill.push_row(row).expect("push row");
    }
    spill
}

/// The spill's bucket files, in a stable order.
fn bucket_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read spill dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frames_round_trip(rows in rows_strategy()) {
        let dir = fresh_dir();
        let mut spill = spill_rows(&rows, &dir);
        let replayed: Result<Vec<Vec<ColumnId>>, SpillReadError> =
            spill.replay().expect("start replay").collect();
        let mut replayed = replayed.expect("clean replay");
        prop_assert_eq!(replayed.len(), rows.len());
        // Replay order is sparsest-bucket-first, so compare as multisets.
        let mut expected = rows.clone();
        replayed.sort();
        expected.sort();
        prop_assert_eq!(replayed, expected);
        drop(spill);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_single_flipped_byte_is_detected(
        rows in rows_strategy(),
        pos in 0u64..u64::MAX,
        xor_sel in 0u8..255,
    ) {
        let xor = xor_sel.wrapping_add(1); // 1..=255: always a real flip
        let dir = fresh_dir();
        let mut spill = spill_rows(&rows, &dir);
        // First replay flushes the writers and proves the file is clean.
        let clean: Result<Vec<Vec<ColumnId>>, SpillReadError> =
            spill.replay().expect("start replay").collect();
        prop_assert!(clean.is_ok(), "pre-flip replay failed: {:?}", clean.err());

        // Flip one byte at a uniformly chosen offset across all buckets.
        let files = bucket_files(&dir);
        let total: u64 = files
            .iter()
            .map(|p| std::fs::metadata(p).expect("stat bucket").len())
            .sum();
        prop_assert!(total > 0, "at least one frame on disk");
        let mut target = pos % total;
        for file in &files {
            let len = std::fs::metadata(file).expect("stat bucket").len();
            if target < len {
                let mut data = std::fs::read(file).expect("read bucket");
                data[target as usize] ^= xor;
                std::fs::write(file, data).expect("write damaged bucket");
                break;
            }
            target -= len;
        }

        // The replay must reject the damage, never decode garbage.
        let outcome: Vec<Result<Vec<ColumnId>, SpillReadError>> =
            spill.replay().expect("start replay").collect();
        let last = outcome.last().expect("replay yields something");
        prop_assert!(
            matches!(last, Err(SpillReadError::Corrupt { .. })),
            "flip at byte {} of {} (xor {:#04x}) undetected: {:?}",
            pos % total,
            total,
            xor,
            last
        );
        drop(spill);
        std::fs::remove_dir_all(&dir).ok();
    }
}
