//! Fault-injection matrix over the four streamed drivers.
//!
//! Every fault kind in the [`FaultKind`](dmc_matrix::spill_io::FaultKind)
//! taxonomy is driven through each of sequential/parallel ×
//! implication/similarity, with three invariants:
//!
//! * **transient faults are invisible** — with retries enabled the run
//!   succeeds and its rules are byte-identical to a fault-free run;
//! * **permanent faults surface typed errors** — `MineError::Io` with
//!   the original `ErrorKind`/os-error intact, or
//!   `MineError::CorruptSpill` for silent data damage (torn writes,
//!   bit flips, lost tails) — never garbage rules;
//! * **no spill files leak**, success or failure.
//!
//! The seeded sweep at the bottom replays pseudo-random single-fault
//! plans; CI runs it with `DMC_FAULT_SWEEP`/`DMC_FAULT_SEED_BASE` raised
//! and uploads the printed fault plan of any failing seed as an artifact
//! (the panic message embeds the plan, which `FaultPlan::seeded` makes
//! exactly replayable from the seed).

use dmc_core::{MineError, Miner, RetryPolicy, SpillSettings};
use dmc_matrix::spill_io::{FaultPlan, FaultyIo};
use dmc_matrix::ColumnId;
use std::convert::Infallible;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const N_COLS: usize = 8;
const DRIVERS: &[&str] = &["imp-seq", "imp-par", "sim-seq", "sim-par"];

/// 60 rows with densities 1–4, so several density buckets exist and
/// every operation class (create/write/open/read) runs enough times to
/// host the planned faults.
fn rows() -> Vec<Result<Vec<ColumnId>, Infallible>> {
    (0..60u32)
        .map(|r| {
            let mut row = vec![r % 8];
            if r % 2 == 0 {
                row.push((r + 1) % 8);
            }
            if r % 3 == 0 {
                row.push((r + 2) % 8);
            }
            if r % 5 == 0 {
                row.push((r + 4) % 8);
            }
            row.sort_unstable();
            row.dedup();
            Ok(row)
        })
        .collect()
}

/// Runs one streamed driver end to end, returning its rules rendered to
/// strings so implication and similarity runs compare uniformly.
fn run_driver(driver: &str, settings: SpillSettings) -> Result<Vec<String>, MineError<Infallible>> {
    // The parallel cases must actually spawn 3 workers, host cores
    // notwithstanding — fault paths through the scheduler are the point.
    std::env::set_var("DMC_SCHED_OVERSUBSCRIBE", "1");
    match driver {
        "imp-seq" => Miner::implications(0.8)
            .spill(settings)
            .mine_streamed(rows(), N_COLS)
            .map(|o| o.rules.iter().map(ToString::to_string).collect()),
        "imp-par" => Miner::implications(0.8)
            .spill(settings)
            .threads(3)
            .mine_streamed(rows(), N_COLS)
            .map(|o| o.rules.iter().map(ToString::to_string).collect()),
        "sim-seq" => Miner::similarities(0.5)
            .spill(settings)
            .mine_streamed(rows(), N_COLS)
            .map(|o| o.rules.iter().map(ToString::to_string).collect()),
        "sim-par" => Miner::similarities(0.5)
            .spill(settings)
            .threads(3)
            .mine_streamed(rows(), N_COLS)
            .map(|o| o.rules.iter().map(ToString::to_string).collect()),
        other => panic!("unknown driver {other}"),
    }
}

/// A private, empty spill directory for one test case; cases never share
/// one, so leak checks cannot race across concurrently running tests.
fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmc-fault-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn leftover(dir: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect()
}

/// Retries without sleeping, so fault tests stay fast.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        seed: 7,
    }
}

/// Settings injecting `plan` into a private directory; returns the
/// `FaultyIo` too so tests can check what actually fired.
fn faulty_settings(plan: FaultPlan, dir: &Path) -> (Arc<FaultyIo>, SpillSettings) {
    let io = Arc::new(FaultyIo::new(plan));
    let settings = SpillSettings {
        io: Arc::clone(&io) as Arc<dyn dmc_matrix::spill_io::SpillIo>,
        retry: fast_retry(3),
        dir: Some(dir.to_path_buf()),
    };
    (io, settings)
}

#[test]
fn transient_faults_are_invisible() {
    let plans = [
        FaultPlan::new().fail_write(5, true),
        FaultPlan::new().fail_read(3, true),
        FaultPlan::new().fail_open(1, true),
    ];
    for driver in DRIVERS {
        let clean = run_driver(driver, SpillSettings::default()).expect("fault-free run");
        for (i, plan) in plans.iter().enumerate() {
            let dir = case_dir(&format!("transient-{driver}-{i}"));
            let (io, settings) = faulty_settings(plan.clone(), &dir);
            let out = run_driver(driver, settings)
                .unwrap_or_else(|e| panic!("{driver} under {plan}: {e}"));
            assert_eq!(out, clean, "{driver} under {plan}: rules differ");
            assert_eq!(
                io.fired().len(),
                1,
                "{driver} under {plan}: fault never fired"
            );
            assert_eq!(
                leftover(&dir),
                Vec::<String>::new(),
                "{driver} under {plan}: leaked spill files"
            );
        }
    }
}

#[test]
fn transient_retries_surface_in_the_run_report() {
    let dir = case_dir("retry-report");
    let plan = FaultPlan::new().fail_write(5, true).fail_read(3, true);
    let (io, settings) = faulty_settings(plan, &dir);
    let out = Miner::implications(0.8)
        .spill(settings)
        .mine_streamed(rows(), N_COLS)
        .expect("transient faults retried");
    assert_eq!(io.fired().len(), 2);
    let counters = out.report.io.expect("streamed run reports io counters");
    assert_eq!(counters.write_retries, 1);
    assert_eq!(counters.read_retries, 1);
    assert_eq!(counters.corrupt_frames, 0);
    assert_eq!(counters.frames_written, 60);
    assert!(
        out.report.reconciles(),
        "io section reconciles after retries"
    );
    assert_eq!(leftover(&dir), Vec::<String>::new());
}

/// What a permanent fault must surface as.
enum Expected {
    /// `MineError::Io` carrying this raw os error.
    Io(i32),
    /// `MineError::CorruptSpill` from the framing/checksum guards.
    Corrupt,
}

#[test]
fn permanent_faults_surface_typed_errors_without_leaks() {
    let cases = [
        (FaultPlan::new().fail_write(5, false), Expected::Io(28)), // ENOSPC
        (FaultPlan::new().fail_create(0), Expected::Io(28)),       // ENOSPC
        (FaultPlan::new().fail_read(3, false), Expected::Io(5)),   // EIO
        (FaultPlan::new().fail_open(1, false), Expected::Io(5)),   // EIO
        (FaultPlan::new().short_read(2), Expected::Corrupt),       // lost tail
        (FaultPlan::new().torn_write(10), Expected::Corrupt),      // torn frame
        (FaultPlan::new().flip_byte(7, 0x10), Expected::Corrupt),  // bit rot
    ];
    for driver in DRIVERS {
        for (i, (plan, expected)) in cases.iter().enumerate() {
            let dir = case_dir(&format!("permanent-{driver}-{i}"));
            let (_io, settings) = faulty_settings(plan.clone(), &dir);
            let err = match run_driver(driver, settings) {
                Err(e) => e,
                Ok(_) => panic!("{driver} under {plan}: run succeeded"),
            };
            match expected {
                Expected::Io(raw) => match &err {
                    MineError::Io { error, .. } => assert_eq!(
                        error.raw_os_error(),
                        Some(*raw),
                        "{driver} under {plan}: wrong os error ({error})"
                    ),
                    other => panic!("{driver} under {plan}: expected Io, got {other}"),
                },
                Expected::Corrupt => assert!(
                    matches!(err, MineError::CorruptSpill { .. }),
                    "{driver} under {plan}: expected CorruptSpill, got {err}"
                ),
            }
            assert_eq!(
                leftover(&dir),
                Vec::<String>::new(),
                "{driver} under {plan}: leaked spill files after error"
            );
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seeded sweep: pseudo-random single-fault plans against every driver.
/// A successful run must produce exactly the fault-free rules (no silent
/// corruption, ever); a failed run must fail typed; nothing may leak.
/// CI raises `DMC_FAULT_SWEEP` and archives the plan printed by a
/// failing seed.
#[test]
fn seeded_fault_sweep() {
    let base = env_u64("DMC_FAULT_SEED_BASE", 0x00DA_7A00);
    let sweep = env_u64("DMC_FAULT_SWEEP", 8);
    for driver in DRIVERS {
        let clean = run_driver(driver, SpillSettings::default()).expect("fault-free run");
        for s in 0..sweep {
            let seed = base + s;
            let plan = FaultPlan::seeded(seed);
            let dir = case_dir(&format!("sweep-{driver}-{seed}"));
            let (io, settings) = faulty_settings(plan.clone(), &dir);
            match run_driver(driver, settings) {
                Ok(out) => assert_eq!(
                    out,
                    clean,
                    "seed {seed} {driver}: wrong rules from successful run \
                     (fired: {:?}); {plan}",
                    io.fired()
                ),
                Err(e) => {
                    assert!(
                        !plan.all_transient(),
                        "seed {seed} {driver}: transient-only plan failed: {e}; {plan}"
                    );
                    assert!(
                        matches!(e, MineError::Io { .. } | MineError::CorruptSpill { .. }),
                        "seed {seed} {driver}: untyped failure {e}; {plan}"
                    );
                }
            }
            assert_eq!(
                leftover(&dir),
                Vec::<String>::new(),
                "seed {seed} {driver}: leaked spill files; {plan}"
            );
        }
    }
}
