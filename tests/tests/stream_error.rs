//! `StreamError` as a std error: `?`-composition into `Box<dyn Error>`,
//! source chains, and Display formatting.

use dmc_core::{find_implications_streamed, ImplicationConfig, StreamError};
use std::error::Error;
use std::fmt;
use std::io;

#[derive(Debug)]
struct SourceFailure(&'static str);

impl fmt::Display for SourceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source failure: {}", self.0)
    }
}

impl Error for SourceFailure {}

/// A streaming mine inside a `?`-composing function: `StreamError<E>`
/// must convert into `Box<dyn Error>` like any std error.
fn mine_with_question_mark(
    rows: Vec<Result<Vec<u32>, SourceFailure>>,
) -> Result<usize, Box<dyn Error>> {
    let out = find_implications_streamed(rows, 4, &ImplicationConfig::new(1.0))?;
    Ok(out.rules.len())
}

#[test]
fn question_mark_composes_into_boxed_error() {
    let ok = mine_with_question_mark(vec![Ok(vec![0, 1]), Ok(vec![0, 1])]).unwrap();
    assert_eq!(ok, 1, "0 and 1 are identical columns");

    let err =
        mine_with_question_mark(vec![Ok(vec![0]), Err(SourceFailure("disk gone"))]).unwrap_err();
    assert!(err.to_string().contains("disk gone"), "{err}");
}

#[test]
fn source_chain_reaches_the_underlying_error() {
    let rows: Vec<Result<Vec<u32>, SourceFailure>> = vec![Err(SourceFailure("why"))];
    let err = find_implications_streamed(rows, 2, &ImplicationConfig::new(1.0)).unwrap_err();
    let source = err.source().expect("Source wraps the caller's error");
    assert_eq!(source.to_string(), "source failure: why");
    assert!(source.downcast_ref::<SourceFailure>().is_some());
}

#[test]
fn io_variant_chains_and_converts() {
    // From<io::Error> powers `?` on spill IO inside the drivers. The
    // conversion must keep the original ErrorKind visible.
    let err: StreamError<SourceFailure> =
        io::Error::new(io::ErrorKind::NotFound, "spill io broke").into();
    assert!(matches!(err, StreamError::Io { .. }));
    assert_eq!(err.io_kind(), Some(io::ErrorKind::NotFound));
    assert!(err.to_string().contains("spill io broke"));
    let source = err.source().expect("Io wraps the io::Error");
    assert!(source.downcast_ref::<io::Error>().is_some());
}

#[test]
fn corrupt_spill_variant_formats_and_has_no_source() {
    let err: StreamError<SourceFailure> = StreamError::CorruptSpill {
        frame: 7,
        reason: "checksum mismatch",
    };
    assert!(err.source().is_none(), "corruption has no io cause");
    assert_eq!(err.io_kind(), None);
    let text = err.to_string();
    assert!(
        text.contains("frame 7") && text.contains("checksum mismatch"),
        "{text}"
    );
}

#[test]
fn column_out_of_range_has_no_source_and_names_the_row() {
    let rows: Vec<Result<Vec<u32>, SourceFailure>> = vec![Ok(vec![0]), Ok(vec![7])];
    let err = find_implications_streamed(rows, 3, &ImplicationConfig::new(1.0)).unwrap_err();
    assert!(matches!(
        err,
        StreamError::ColumnOutOfRange { row: 1, id: 7 }
    ));
    assert!(err.source().is_none(), "terminal variant has no cause");
    let text = err.to_string();
    assert!(text.contains("row 1") && text.contains('7'), "{text}");
}
