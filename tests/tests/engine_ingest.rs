//! Incremental-ingest fidelity: a long-lived [`Engine`] that mines a
//! base matrix and then ingests the remaining rows batch-by-batch must
//! end with *exactly* the rule set of a from-scratch mine over the full
//! dataset — byte-identical structs, not merely the same pairs. This is
//! the exactness guarantee of DESIGN.md §12: appends only grow `ones`
//! and `hits`, so re-deriving from bumped tracked counters plus exact
//! recounts of newly co-occurring pairs revives nothing and misses
//! nothing.

use dmc_baselines::oracle;
use dmc_core::{
    find_implications, Engine, ImplicationConfig, MineConfig, MineError, Miner, SparseMatrix,
};
use dmc_datagen::{planted_implications, PlantedConfig};
use dmc_integration_tests::{matrix_strategy, threshold_strategy};
use proptest::prelude::*;

/// Splits `m`'s rows at `base_len`, mines the base, then ingests the
/// tail in `batch`-row chunks; returns the engine after the last batch.
fn ingest_tail(config: MineConfig, m: &SparseMatrix, base_len: usize, batch: usize) -> Engine {
    let rows: Vec<Vec<u32>> = m.rows().map(<[u32]>::to_vec).collect();
    let base_len = base_len.min(rows.len());
    let base = SparseMatrix::from_rows(m.n_cols(), rows[..base_len].to_vec());
    let mut engine = Engine::new(config, base);
    engine.mine();
    for chunk in rows[base_len..].chunks(batch.max(1)) {
        engine.ingest(chunk).expect("planted ids are in range");
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn imp_ingest_matches_from_scratch_mine(
        m in matrix_strategy(24, 14),
        minconf in threshold_strategy(),
        base_len in 0usize..=24,
        batch in 1usize..8,
    ) {
        let config = MineConfig::implications(minconf).unwrap();
        let engine = ingest_tail(config, &m, base_len, batch);
        let scratch = Miner::implications(minconf)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        prop_assert_eq!(engine.implication_rules(), &scratch.rules[..]);
        // And both agree with the oracle, so the pair cannot be wrong
        // together.
        prop_assert_eq!(
            engine.implication_rules(),
            &oracle::exact_implications(&m, minconf, false)[..]
        );
    }

    #[test]
    fn sim_ingest_matches_from_scratch_mine(
        m in matrix_strategy(24, 14),
        minsim in threshold_strategy(),
        base_len in 0usize..=24,
        batch in 1usize..8,
    ) {
        let config = MineConfig::similarities(minsim).unwrap();
        let engine = ingest_tail(config, &m, base_len, batch);
        let scratch = Miner::similarities(minsim)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        prop_assert_eq!(engine.similarity_rules(), &scratch.rules[..]);
        prop_assert_eq!(
            engine.similarity_rules(),
            &oracle::exact_similarities(&m, minsim)[..]
        );
    }

    #[test]
    fn imp_ingest_with_reverse_matches_from_scratch_mine(
        m in matrix_strategy(20, 10),
        minconf in threshold_strategy(),
        base_len in 0usize..=20,
        batch in 1usize..6,
    ) {
        let config: MineConfig =
            ImplicationConfig::new(minconf).with_reverse(true).into();
        let engine = ingest_tail(config, &m, base_len, batch);
        let scratch =
            find_implications(&m, &ImplicationConfig::new(minconf).with_reverse(true));
        prop_assert_eq!(engine.implication_rules(), &scratch.rules[..]);
        prop_assert_eq!(
            engine.implication_rules(),
            &oracle::exact_implications(&m, minconf, true)[..]
        );
    }

    #[test]
    fn threaded_base_mine_does_not_change_ingest_results(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
        base_len in 0usize..=20,
        threads in 1usize..5,
    ) {
        let rows: Vec<Vec<u32>> = m.rows().map(<[u32]>::to_vec).collect();
        let base_len = base_len.min(rows.len());
        let base = SparseMatrix::from_rows(m.n_cols(), rows[..base_len].to_vec());
        let mut engine =
            Engine::new(MineConfig::implications(minconf).unwrap(), base)
                .with_threads(threads);
        engine.mine();
        engine.ingest(&rows[base_len..]).expect("ids are in range");
        let scratch = Miner::implications(minconf)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        prop_assert_eq!(engine.implication_rules(), &scratch.rules[..]);
    }

    #[test]
    fn ingest_auto_mines_an_unmined_engine(
        m in matrix_strategy(20, 12),
        minconf in threshold_strategy(),
        base_len in 0usize..=20,
    ) {
        let rows: Vec<Vec<u32>> = m.rows().map(<[u32]>::to_vec).collect();
        let base_len = base_len.min(rows.len());
        let base = SparseMatrix::from_rows(m.n_cols(), rows[..base_len].to_vec());
        // No explicit mine(): the first ingest must run it.
        let mut engine = Engine::new(MineConfig::implications(minconf).unwrap(), base);
        engine.ingest(&rows[base_len..]).expect("ids are in range");
        let scratch = Miner::implications(minconf)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        prop_assert_eq!(engine.implication_rules(), &scratch.rules[..]);
    }

    #[test]
    fn query_agrees_with_the_rule_set_after_ingest(
        m in matrix_strategy(18, 10),
        minconf in threshold_strategy(),
        base_len in 0usize..=18,
    ) {
        let config = MineConfig::implications(minconf).unwrap();
        let engine = ingest_tail(config, &m, base_len, 3);
        // Every emitted rule must qualify under query; scan all pairs so
        // non-rules are checked for the converse too.
        let rules = engine.implication_rules().to_vec();
        for lhs in 0..m.n_cols() as u32 {
            for rhs in 0..m.n_cols() as u32 {
                if lhs == rhs {
                    continue;
                }
                let answer = engine.query(lhs, rhs).expect("ids in range");
                let emitted = rules.iter().any(|r| r.lhs == lhs && r.rhs == rhs);
                if emitted {
                    prop_assert!(
                        answer.qualifies,
                        "emitted rule {lhs}=>{rhs} must qualify under query"
                    );
                }
            }
        }
    }
}

/// The acceptance check on the planted generators: deterministic planted
/// datasets, several split points and batch sizes, byte-identical rule
/// vectors, and ingest stats that reconcile in the v5 run report.
#[test]
fn planted_datasets_are_ingest_exact_at_every_split() {
    for (rows, cols, pairs, seed) in [(600, 80, 8, 3u64), (1200, 120, 12, 7)] {
        let m = planted_implications(&PlantedConfig::new(rows, cols, pairs, seed)).matrix;
        let scratch = Miner::implications(0.9)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        for (numer, denom) in [(0, 1), (1, 4), (1, 2), (3, 4), (99, 100)] {
            let base_len = rows * numer / denom;
            for batch in [1, 64, 512] {
                let engine =
                    ingest_tail(MineConfig::implications(0.9).unwrap(), &m, base_len, batch);
                assert_eq!(
                    engine.implication_rules(),
                    &scratch.rules[..],
                    "split {numer}/{denom}, batch {batch}"
                );
                let stats = engine.ingest_stats();
                assert_eq!(stats.rows_ingested, (rows - base_len) as u64);
                assert!(stats.rules_born <= stats.pairs_recounted);
                let report = engine.report_with_ingest().expect("engine has mined");
                assert!(report.reconciles(), "split {numer}/{denom} batch {batch}");
            }
        }
    }
}

/// An out-of-range column id fails the whole batch up front: no rows are
/// appended, no counters move, and the rule set is untouched.
#[test]
fn out_of_range_ingest_is_rejected_atomically() {
    let m = planted_implications(&PlantedConfig::new(200, 40, 4, 5)).matrix;
    let mut engine = Engine::new(MineConfig::implications(0.9).unwrap(), m.clone());
    engine.mine();
    let rules_before = engine.implication_rules().to_vec();
    let rows_before = engine.matrix().n_rows();
    let err = engine
        .ingest(&[vec![0, 1], vec![2, 40]])
        .expect_err("column 40 is out of range for 40 columns");
    assert!(
        matches!(err, MineError::ColumnOutOfRange { id: 40, .. }),
        "{err}"
    );
    assert_eq!(engine.matrix().n_rows(), rows_before);
    assert_eq!(engine.implication_rules(), &rules_before[..]);
    assert_eq!(engine.ingest_stats().batches, 0);
}
