//! Cross-process fidelity of column-sharded mining: for every generator
//! × algorithm × threshold × shard count, the merged shard union must be
//! **byte-identical** to the single-process `Engine::mine` output — same
//! rules, same serialized text — and the per-shard counters must sum to
//! the unsharded run's counters (each shard re-scans every row, so only
//! `rows_scanned` multiplies; every candidate event belongs to exactly
//! one owner shard).

use dmc_core::shard::{merge_shards, plan_shards, run_worker, shard_path};
use dmc_core::{
    shard_mine, write_rules, Engine, ImplicationRule, MineConfig, ScanTally, SimilarityRule,
    SparseMatrix,
};
use dmc_datagen::{planted_implications, weblog, PlantedConfig, WeblogConfig};
use dmc_matrix::spill_io::{RetryPolicy, StdFsIo};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dmc-shard-fidelity-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn generators() -> Vec<(&'static str, SparseMatrix)> {
    vec![
        (
            "planted",
            planted_implications(&PlantedConfig::new(300, 40, 5, 11)).matrix,
        ),
        ("weblog", weblog(&WeblogConfig::new(250, 30, 7))),
    ]
}

fn single_process(
    config: &MineConfig,
    m: &SparseMatrix,
) -> (Vec<ImplicationRule>, Vec<SimilarityRule>, ScanTally) {
    let mut engine = Engine::new(config.clone(), m.clone());
    let report = engine.mine().clone();
    (
        engine.implication_rules().to_vec(),
        engine.similarity_rules().to_vec(),
        report.counters,
    )
}

fn rules_text(imp: &[ImplicationRule], sim: &[SimilarityRule]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_rules(imp, sim, &mut buf).unwrap();
    buf
}

fn configs() -> Vec<(&'static str, MineConfig)> {
    let mut cases: Vec<(&'static str, MineConfig)> = vec![
        ("imp-1.0", MineConfig::implications(1.0).unwrap()),
        ("imp-0.85", MineConfig::implications(0.85).unwrap()),
        ("imp-0.6", MineConfig::implications(0.6).unwrap()),
        ("sim-0.7", MineConfig::similarities(0.7).unwrap()),
        ("sim-0.4", MineConfig::similarities(0.4).unwrap()),
    ];
    // emit_reverse: reverse rules are derived inside the owner shard, so
    // they must partition exactly like the forward rules.
    let MineConfig::Implication(cfg) = MineConfig::implications(0.75).unwrap() else {
        unreachable!()
    };
    cases.push((
        "imp-0.75-reverse",
        MineConfig::Implication(cfg.with_reverse(true)),
    ));
    cases
}

#[test]
fn merged_output_is_byte_identical_to_single_process() {
    let dir = TempDir::new("bytes");
    for (gen_name, m) in generators() {
        for (cfg_name, config) in configs() {
            let (imp, sim, _) = single_process(&config, &m);
            let expected_text = rules_text(&imp, &sim);
            for n_shards in [1usize, 2, 7, m.n_cols()] {
                let tag = format!("{gen_name}-{cfg_name}-{n_shards}");
                let merged = shard_mine(
                    &StdFsIo,
                    &dir.path(&format!("{tag}.manifest")),
                    RetryPolicy::none(),
                    &config,
                    &m,
                    n_shards,
                    false,
                )
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(merged.imp_rules, imp, "{tag}: implication rules");
                assert_eq!(merged.sim_rules, sim, "{tag}: similarity rules");
                assert_eq!(
                    rules_text(&merged.imp_rules, &merged.sim_rules),
                    expected_text,
                    "{tag}: serialized rules"
                );
                assert!(merged.report.reconciles(), "{tag}: report reconciles");
                assert_eq!(merged.report.mode, "sharded", "{tag}");
                assert_eq!(
                    merged.report.shard.as_ref().unwrap().n_shards,
                    n_shards.min(m.n_cols()),
                    "{tag}: plan clamps to the column count"
                );
            }
        }
    }
}

#[test]
fn per_shard_counters_sum_to_the_unsharded_run() {
    let dir = TempDir::new("counters");
    for (gen_name, m) in generators() {
        for (cfg_name, config) in configs() {
            let (_, _, unsharded) = single_process(&config, &m);
            for n_shards in [2usize, 7] {
                let tag = format!("{gen_name}-{cfg_name}-{n_shards}");
                let merged = shard_mine(
                    &StdFsIo,
                    &dir.path(&format!("{tag}.manifest")),
                    RetryPolicy::none(),
                    &config,
                    &m,
                    n_shards,
                    false,
                )
                .unwrap();
                let section = merged.report.shard.as_ref().unwrap();
                let mut sum = ScanTally::new();
                for entry in &section.shards {
                    sum.merge(&entry.counters);
                }
                // Every candidate event (admission, deletion, miss, rule)
                // happens in exactly one owner shard; only the row scans
                // multiply, one full pass per shard.
                assert_eq!(
                    sum.candidates_admitted, unsharded.candidates_admitted,
                    "{tag}: admitted"
                );
                assert_eq!(
                    sum.candidates_deleted, unsharded.candidates_deleted,
                    "{tag}: deleted"
                );
                assert_eq!(
                    sum.misses_counted, unsharded.misses_counted,
                    "{tag}: misses"
                );
                assert_eq!(sum.rules_emitted, unsharded.rules_emitted, "{tag}: emitted");
                assert_eq!(
                    sum.rows_scanned,
                    unsharded.rows_scanned * section.n_shards as u64,
                    "{tag}: each shard re-scans every row"
                );
            }
        }
    }
}

/// Workers may run in any order and any interleaving across processes;
/// writing the shards in reverse order must not change the merge.
#[test]
fn worker_order_does_not_matter() {
    let dir = TempDir::new("order");
    let m = planted_implications(&PlantedConfig::new(200, 24, 4, 3)).matrix;
    let config = MineConfig::implications(0.8).unwrap();
    let (imp, _, _) = single_process(&config, &m);
    let plan = plan_shards(m.n_cols(), 4).unwrap();
    let manifest = dir.path("reverse.manifest");
    for index in (0..plan.len()).rev() {
        run_worker(
            &StdFsIo,
            &manifest,
            RetryPolicy::none(),
            &config,
            &m,
            &plan,
            index,
        )
        .unwrap();
    }
    let merged = merge_shards(&StdFsIo, &manifest, plan.len(), RetryPolicy::none(), false).unwrap();
    assert_eq!(merged.imp_rules, imp);
    assert!(merged.report.reconciles());
    for i in 0..plan.len() {
        assert!(
            !shard_path(&manifest, i).exists(),
            "shard {i} spill removed after merge"
        );
    }
}

/// Degenerate inputs: empty matrix, single column, more shards than
/// columns.
#[test]
fn degenerate_shapes_shard_cleanly() {
    let dir = TempDir::new("degenerate");
    let empty = SparseMatrix::from_rows(0, vec![]);
    let config = MineConfig::implications(0.9).unwrap();
    let merged = shard_mine(
        &StdFsIo,
        &dir.path("empty.manifest"),
        RetryPolicy::none(),
        &config,
        &empty,
        4,
        false,
    )
    .unwrap();
    assert!(merged.imp_rules.is_empty());
    assert!(merged.report.reconciles());

    let single = SparseMatrix::from_rows(1, vec![vec![0], vec![0]]);
    let merged = shard_mine(
        &StdFsIo,
        &dir.path("single.manifest"),
        RetryPolicy::none(),
        &config,
        &single,
        8,
        false,
    )
    .unwrap();
    assert!(merged.report.reconciles());
    assert_eq!(
        merged.report.shard.unwrap().n_shards,
        1,
        "clamped to 1 column"
    );
}
