//! Baselines vs oracle and vs DMC: agreement where exact, bounded error
//! where sketched.

use dmc_baselines::apriori::{
    apriori_implications, apriori_similarities, frequent_itemsets, rules_from_itemsets,
    AprioriConfig,
};
use dmc_baselines::kmin::{kmin_implications, KMinConfig};
use dmc_baselines::minhash::{minhash_similarities, MinHashConfig};
use dmc_baselines::oracle;
use dmc_core::{find_implications, find_similarities, ImplicationConfig, SimilarityConfig};
use dmc_integration_tests::{matrix_strategy, random_matrix, threshold_strategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apriori_unpruned_matches_oracle(
        m in matrix_strategy(24, 12),
        thr in threshold_strategy(),
    ) {
        let cfg = AprioriConfig::new(1, u32::MAX);
        prop_assert_eq!(
            apriori_implications(&m, &cfg, thr).rules,
            oracle::exact_implications(&m, thr, false)
        );
        prop_assert_eq!(
            apriori_similarities(&m, &cfg, thr).rules,
            oracle::exact_similarities(&m, thr)
        );
    }

    #[test]
    fn apriori_dhp_matches_plain(
        m in matrix_strategy(20, 10),
        thr in threshold_strategy(),
        buckets in 1usize..64,
    ) {
        let plain = apriori_implications(&m, &AprioriConfig::new(2, u32::MAX), thr);
        let dhp = apriori_implications(
            &m,
            &AprioriConfig::new(2, u32::MAX).with_dhp(buckets),
            thr,
        );
        prop_assert_eq!(plain.rules, dhp.rules);
    }

    #[test]
    fn support_pruned_apriori_is_a_subset_of_dmc(
        m in matrix_strategy(24, 12),
        thr in threshold_strategy(),
        minsup in 1u32..6,
    ) {
        // A-priori with support pruning can only lose rules relative to
        // DMC's confidence-only pruning — never invent them.
        let ap = apriori_implications(&m, &AprioriConfig::new(minsup, u32::MAX), thr);
        let dmc = find_implications(&m, &ImplicationConfig::new(thr));
        for rule in &ap.rules {
            prop_assert!(dmc.rules.contains(rule), "apriori invented {rule}");
        }
    }

    #[test]
    fn minhash_verified_has_no_false_positives(
        m in matrix_strategy(24, 12),
        thr in threshold_strategy(),
    ) {
        let out = minhash_similarities(&m, thr, &MinHashConfig::new(64));
        let exact = oracle::exact_similarities(&m, thr);
        for rule in &out.rules {
            prop_assert!(exact.contains(rule), "minhash false positive {rule}");
        }
    }

    #[test]
    fn kmin_verified_has_no_false_positives(
        m in matrix_strategy(24, 12),
        thr in threshold_strategy(),
    ) {
        let out = kmin_implications(&m, thr, &KMinConfig::new(16));
        let exact = oracle::exact_implications(&m, thr, false);
        for rule in &out.rules {
            prop_assert!(exact.contains(rule), "kmin false positive {rule}");
        }
    }

    #[test]
    fn itemset_pair_rules_agree_with_pair_miner(
        m in matrix_strategy(16, 8),
        minsup in 1u32..4,
    ) {
        let minconf = 0.6;
        let sets = frequent_itemsets(&m, minsup, 2);
        let rules = rules_from_itemsets(&sets, minconf);
        let mut cfg = AprioriConfig::new(minsup, u32::MAX);
        cfg.min_pair_support = minsup;
        let pair_rules = apriori_implications(&m, &cfg, minconf);
        // Every canonical pair rule of the pair miner appears among the
        // itemset rules (as a 1 => 1 rule in some direction).
        for rule in &pair_rules.rules {
            let found = rules
                .iter()
                .any(|r| r.antecedent == [rule.lhs] && r.consequent == [rule.rhs]);
            prop_assert!(found, "missing itemset rule for {rule}");
        }
    }
}

/// Recall of the sketches improves with sketch size (measured, not
/// asserted tightly — only monotone-ish sanity bounds). Independent random
/// matrices carry no high-confidence rules, so the rules are planted.
#[test]
fn sketch_recall_improves_with_size() {
    let data =
        dmc_datagen::planted_implications(&dmc_datagen::PlantedConfig::new(1500, 60, 20, 17));
    let m = &data.matrix;
    let exact = oracle::exact_implications(m, 0.85, false);
    assert!(!exact.is_empty(), "need some rules to measure recall");
    let recall = |k: usize| {
        let out = kmin_implications(m, 0.85, &KMinConfig::new(k));
        out.rules.iter().filter(|r| exact.contains(r)).count() as f64 / exact.len() as f64
    };
    let (small, large) = (recall(2), recall(256));
    assert!(large >= small, "recall k=256 ({large}) < k=2 ({small})");
    assert!(large > 0.9, "large sketch recall {large}");
}

/// The Fig 6(i) trade-off in miniature: K-Min misses rules that DMC finds.
#[test]
fn kmin_false_negatives_exist_with_small_sketches() {
    let data = dmc_datagen::planted_implications(&dmc_datagen::PlantedConfig::new(2000, 80, 30, 3));
    let m = &data.matrix;
    let dmc = find_implications(m, &ImplicationConfig::new(0.8));
    assert!(
        dmc.rules.len() >= 20,
        "{} planted rules qualify",
        dmc.rules.len()
    );
    let mut cfg = KMinConfig::new(2);
    cfg.candidate_slack = 0.0;
    let km = kmin_implications(m, 0.8, &cfg);
    let missed = dmc.rules.iter().filter(|r| !km.rules.contains(r)).count();
    assert!(
        missed > 0,
        "a 2-element sketch with no slack should miss something ({} rules)",
        dmc.rules.len()
    );
}

/// Min-Hash with banding finds the same verified rules as all-pairs when
/// bands are tight enough for the threshold.
#[test]
fn banding_matches_all_pairs_at_high_threshold() {
    let m = random_matrix(300, 40, 0.2, 9);
    let all = minhash_similarities(&m, 0.9, &MinHashConfig::new(128));
    let banded = minhash_similarities(&m, 0.9, &MinHashConfig::new(128).with_banding(64, 2));
    // Banding with r=2 at thr=0.9 has collision prob 0.81 per band over 64
    // bands: essentially certain recall.
    assert_eq!(all.rules, banded.rules);
    let sims = find_similarities(&m, &SimilarityConfig::new(0.9));
    assert_eq!(all.rules, sims.rules, "verified minhash equals DMC here");
}
