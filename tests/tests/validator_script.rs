//! `scripts/validate_run_report.py` against freshly mined reports: the
//! CI validator must accept every driver's real output and reject a
//! tampered report, so the script cannot silently drift from the
//! `dmc_core::RUN_REPORT_SCHEMA` version it gates.

use dmc_core::{Miner, SparseMatrix};
use dmc_datagen::{planted_implications, PlantedConfig};
use std::convert::Infallible;
use std::path::{Path, PathBuf};
use std::process::Command;

fn script() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../scripts/validate_run_report.py")
}

fn matrix() -> SparseMatrix {
    planted_implications(&PlantedConfig::new(400, 60, 6, 11)).matrix
}

fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<u32>, Infallible>> {
    m.rows().map(|r| Ok(r.to_vec())).collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("dmc-validator-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the validator; returns (exit code, stdout, stderr).
fn validate(report: &Path, algorithm: &str, mode: &str, workers: usize) -> (i32, String, String) {
    let out = Command::new("python3")
        .arg(script())
        .arg(report)
        .arg(algorithm)
        .arg(mode)
        .arg(workers.to_string())
        .output()
        .expect("python3 must be available (CI and dev images ship it)");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn accepts_reports_from_real_drivers() {
    let dir = TempDir::new();
    let m = matrix();
    // The threaded cases must report exactly the requested worker counts,
    // so lift the host-core cap on worker resolution.
    std::env::set_var("DMC_SCHED_OVERSUBSCRIBE", "1");
    let cases: Vec<(&str, String, &str, &str, usize)> = vec![
        (
            "imp-mem.json",
            Miner::implications(0.9)
                .mine(&m)
                .expect("in-memory mines cannot fail")
                .report
                .to_json(),
            "implication",
            "in-memory",
            0,
        ),
        (
            "sim-stream-t4.json",
            Miner::similarities(0.7)
                .threads(4)
                .mine_streamed(rows_of(&m), m.n_cols())
                .unwrap()
                .report
                .to_json(),
            "similarity",
            "streamed",
            4,
        ),
        (
            "imp-mem-t2.json",
            Miner::implications(0.9)
                .threads(2)
                .mine(&m)
                .expect("in-memory mines cannot fail")
                .report
                .to_json(),
            "implication",
            "in-memory",
            2,
        ),
    ];
    for (name, json, algorithm, mode, workers) in cases {
        let path = dir.0.join(name);
        std::fs::write(&path, json).unwrap();
        let (code, stdout, stderr) = validate(&path, algorithm, mode, workers);
        assert_eq!(code, 0, "{name}: stdout {stdout:?} stderr {stderr:?}");
        assert!(stdout.contains("ok"), "{name}: {stdout:?}");
    }
}

#[test]
fn rejects_tampered_and_mismatched_reports() {
    let dir = TempDir::new();
    let m = matrix();
    let good = Miner::implications(0.9)
        .mine(&m)
        .expect("in-memory mines cannot fail")
        .report
        .to_json();

    // Wrong expectations against a valid report.
    let path = dir.0.join("good.json");
    std::fs::write(&path, &good).unwrap();
    let (code, _, stderr) = validate(&path, "similarity", "in-memory", 0);
    assert_eq!(code, 1, "wrong algorithm must fail: {stderr}");

    // A tampered counter breaks the reconciliation identity.
    let rigged = good.replacen("\"candidates_admitted\": ", "\"candidates_admitted\": 9", 1);
    assert_ne!(rigged, good, "tamper target must exist");
    let path = dir.0.join("rigged.json");
    std::fs::write(&path, rigged).unwrap();
    let (code, _, stderr) = validate(&path, "implication", "in-memory", 0);
    assert_eq!(code, 1, "tampered counters must fail: {stderr}");
    assert!(stderr.contains("INVALID"), "{stderr}");

    // An old schema version is rejected outright.
    let old = good.replace(dmc_core::RUN_REPORT_SCHEMA, "dmc.run_report.v2");
    assert_ne!(old, good, "schema tamper target must exist");
    let path = dir.0.join("old.json");
    std::fs::write(&path, old).unwrap();
    let (code, _, _) = validate(&path, "implication", "in-memory", 0);
    assert_eq!(code, 1, "old schema must fail");

    // Usage errors exit 2.
    let out = Command::new("python3").arg(script()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// A real sharded merge's report, as `dmc shard --metrics` writes it.
fn sharded_json(dir: &TempDir, n_shards: usize) -> String {
    use dmc_matrix::spill_io::{RetryPolicy, StdFsIo};
    let merged = dmc_core::shard_mine(
        &StdFsIo,
        &dir.0.join(format!("fixture-{n_shards}.manifest")),
        RetryPolicy::none(),
        &dmc_core::MineConfig::implications(0.85).unwrap(),
        &matrix(),
        n_shards,
        false,
    )
    .unwrap();
    merged.report.to_json()
}

#[test]
fn accepts_sharded_reports() {
    let dir = TempDir::new();
    for n_shards in [1usize, 4] {
        let json = sharded_json(&dir, n_shards);
        let path = dir.0.join(format!("sharded-{n_shards}.json"));
        std::fs::write(&path, json).unwrap();
        // A sharded merge reports one "thread" (worker process) per shard
        // but no in-process worker summaries.
        let (code, stdout, stderr) = validate(&path, "implication", "sharded", 0);
        assert_eq!(code, 0, "{n_shards} shards: {stdout:?} {stderr:?}");
    }
}

#[test]
fn rejects_tampered_shard_sections() {
    let dir = TempDir::new();
    let good = sharded_json(&dir, 4);

    // A shard's counters no longer sum to the run counters.
    let tampers = [
        (
            "counter",
            "\"candidates_admitted\": ",
            "\"candidates_admitted\": 9",
        ),
        // The first shard's range no longer starts at column 0.
        ("range", "\"col_lo\": 0,", "\"col_lo\": 1,"),
        // A shard claims a different rule count than the merged total.
        ("rules", "\"rules\": ", "\"rules\": 9"),
        // The shard section vanishes from a sharded-mode report.
        ("missing", "\"shard\": {", "\"shard_gone\": {"),
    ];
    for (name, from, to) in tampers {
        // Tamper inside the shard section only: split the JSON at the
        // section start so run-level keys with the same names stay intact.
        let at = good.find("\"shard\"").expect("shard section present");
        let (head, tail) = good.split_at(at);
        let rigged = format!("{head}{}", tail.replacen(from, to, 1));
        assert_ne!(rigged, good, "{name}: tamper target must exist");
        let path = dir.0.join(format!("shard-tamper-{name}.json"));
        std::fs::write(&path, rigged).unwrap();
        let (code, _, stderr) = validate(&path, "implication", "sharded", 0);
        assert_eq!(code, 1, "{name}: tampered shard section must fail");
        assert!(stderr.contains("INVALID"), "{name}: {stderr}");
    }

    // An unsharded mode claim over a report carrying a shard section is
    // fine (the section still has to be internally consistent), but a
    // sharded mode claim requires the section.
    let (code, _, _) = validate(
        &{
            let path = dir.0.join("mode-mismatch.json");
            std::fs::write(&path, &good).unwrap();
            path
        },
        "implication",
        "in-memory",
        0,
    );
    assert_eq!(code, 1, "mode mismatch must fail");
}
