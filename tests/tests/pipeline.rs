//! End-to-end pipelines across crates: IO round-trips into mining,
//! transforms feeding the miners, metrics wiring, and cross-orientation
//! identities.

use dmc_baselines::oracle;
use dmc_core::{
    find_implications, find_similarities, ImplicationConfig, SimilarityConfig, SwitchPolicy,
};
use dmc_integration_tests::random_matrix;
use dmc_matrix::io::{read_matrix, write_matrix};
use dmc_matrix::order::RowOrder;
use dmc_matrix::transform::{prune_min_support, transpose};

#[test]
fn io_roundtrip_preserves_mining_results() {
    let m = random_matrix(150, 30, 0.15, 4);
    let mut buf = Vec::new();
    write_matrix(&m, &mut buf).unwrap();
    let back = read_matrix(&buf[..]).unwrap();
    assert_eq!(back, m);
    assert_eq!(
        find_implications(&m, &ImplicationConfig::new(0.8)).rules,
        find_implications(&back, &ImplicationConfig::new(0.8)).rules
    );
}

#[test]
fn support_pruning_then_mining_matches_manual_filter() {
    let m = random_matrix(200, 40, 0.1, 8);
    let pruned = prune_min_support(&m, 5);
    let pruned_rules = find_implications(&pruned.matrix, &ImplicationConfig::new(0.8)).rules;
    // Same rules as mining the full matrix and keeping rules whose columns
    // both meet the support bar (translated through the id mapping).
    let ones = m.column_ones();
    let full_rules = find_implications(&m, &ImplicationConfig::new(0.8)).rules;
    let expected: Vec<(u32, u32, u32)> = full_rules
        .iter()
        .filter(|r| ones[r.lhs as usize] >= 5 && ones[r.rhs as usize] >= 5)
        .map(|r| (r.lhs, r.rhs, r.hits))
        .collect();
    let translated: Vec<(u32, u32, u32)> = pruned_rules
        .iter()
        .map(|r| (pruned.original_id(r.lhs), pruned.original_id(r.rhs), r.hits))
        .collect();
    assert_eq!(translated, expected);
}

#[test]
fn similarity_is_invariant_under_transpose_of_symmetric_data() {
    // For any matrix, sim rules of M's columns relate to M; mining Mᵀ
    // relates its rows. Double transpose is identity.
    let m = random_matrix(80, 25, 0.2, 15);
    assert_eq!(transpose(&transpose(&m)), m);
    let direct = find_similarities(&m, &SimilarityConfig::new(0.6)).rules;
    let via_double =
        find_similarities(&transpose(&transpose(&m)), &SimilarityConfig::new(0.6)).rules;
    assert_eq!(direct, via_double);
}

#[test]
fn phase_report_covers_all_stages() {
    let m = random_matrix(300, 40, 0.12, 23);
    let cfg = ImplicationConfig::new(0.8).with_switch(SwitchPolicy::always_at(16));
    let out = find_implications(&m, &cfg);
    let names: Vec<&str> = out.phases.phases().iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        vec!["pre-scan", "100% rules", "<100% rules", "bitmap tail"],
        "all four stages timed, in pipeline order"
    );
    assert!(out.bitmap_switch_at.is_some());
}

#[test]
fn memory_peak_is_monotone_in_threshold_looseness() {
    // Lower thresholds admit more candidates for longer: the peak counter
    // array can only grow (on identical data/order).
    let m = random_matrix(400, 60, 0.1, 42);
    let peak = |thr: f64| {
        find_implications(
            &m,
            &ImplicationConfig::new(thr).with_row_order(RowOrder::Original),
        )
        .memory
        .peak_candidates()
    };
    let (p95, p75, p50) = (peak(0.95), peak(0.75), peak(0.5));
    assert!(p95 <= p75, "peak(0.95)={p95} > peak(0.75)={p75}");
    assert!(p75 <= p50, "peak(0.75)={p75} > peak(0.5)={p50}");
}

#[test]
fn bucketed_order_never_loses_rules_on_heavy_tailed_data() {
    // A crawler-style matrix: many sparse rows plus two dense rows.
    let mut rows: Vec<Vec<u32>> = (0..200).map(|i| vec![i % 10, 10 + (i % 7)]).collect();
    rows.push((0..17).collect());
    rows.push((0..17).collect());
    let m = dmc_core::SparseMatrix::from_rows(17, rows);
    for thr in [1.0, 0.9, 0.7] {
        let bucketed = find_implications(&m, &ImplicationConfig::new(thr));
        assert_eq!(
            bucketed.rules,
            oracle::exact_implications(&m, thr, false),
            "thr={thr}"
        );
    }
}

#[test]
fn sim_and_imp_rule_sets_are_consistent() {
    // Any similarity rule implies both directional confidences are at
    // least the similarity (hits/union <= hits/ones for each side).
    let m = random_matrix(250, 35, 0.15, 77);
    let sims = find_similarities(&m, &SimilarityConfig::new(0.7)).rules;
    let imps = find_implications(&m, &ImplicationConfig::new(0.7).with_reverse(true)).rules;
    for s in &sims {
        assert!(
            imps.iter().any(|r| r.lhs == s.a && r.rhs == s.b),
            "sim pair {s} lacks its forward implication"
        );
    }
}
